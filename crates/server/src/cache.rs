//! A sharded LRU cache for `locate` answers.
//!
//! `locate` is the high-QPS endpoint (it is a read of the prebuilt diagram,
//! not an optimization), and real traffic concentrates on popular places.
//! Keys are the dataset name, its snapshot generation, and the quantized
//! cell of the probe — so a reload naturally invalidates (generation changes)
//! and nearby probes collide onto one entry. Sharding by key hash keeps lock
//! contention away from the worker pool.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Cache key: dataset, snapshot generation, quantized cell.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Dataset name.
    pub dataset: String,
    /// Snapshot generation the answer was computed against.
    pub generation: u64,
    /// Quantized cell of the probe location.
    pub cell: (i64, i64),
}

struct Shard<V> {
    entries: HashMap<CacheKey, (Arc<V>, u64)>,
    tick: u64,
}

impl<V> Shard<V> {
    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

/// A sharded LRU map from [`CacheKey`] to `Arc<V>`.
pub struct LocateCache<V> {
    shards: Vec<Mutex<Shard<V>>>,
    per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<V> LocateCache<V> {
    /// A cache of `capacity` total entries spread over `shards` shards.
    pub fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1);
        LocateCache {
            per_shard: capacity.div_ceil(shards).max(1),
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                        tick: 0,
                    })
                })
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard<V>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Looks up a key, refreshing its recency on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<V>> {
        let mut shard = self.shard(key).lock().expect("cache lock poisoned");
        let tick = shard.touch();
        match shard.entries.get_mut(key) {
            Some((value, last_use)) => {
                *last_use = tick;
                let value = Arc::clone(value);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a value, evicting the shard's least-recently-used entry when
    /// the shard is full. (Eviction scans the shard — shards are small by
    /// construction, so this stays cheap and dependency-free.)
    pub fn insert(&self, key: CacheKey, value: Arc<V>) {
        let mut shard = self.shard(&key).lock().expect("cache lock poisoned");
        let tick = shard.touch();
        if shard.entries.len() >= self.per_shard && !shard.entries.contains_key(&key) {
            if let Some(oldest) = shard
                .entries
                .iter()
                .min_by_key(|(_, (_, last_use))| *last_use)
                .map(|(k, _)| k.clone())
            {
                shard.entries.remove(&oldest);
            }
        }
        shard.entries.insert(key, (value, tick));
    }

    /// Total entries across shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache lock poisoned").entries.len())
            .sum()
    }

    /// `true` when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime (hits, misses).
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(cell: (i64, i64)) -> CacheKey {
        CacheKey {
            dataset: "d".into(),
            generation: 1,
            cell,
        }
    }

    #[test]
    fn hit_and_miss_accounting() {
        let cache: LocateCache<u32> = LocateCache::new(4, 64);
        assert!(cache.get(&key((0, 0))).is_none());
        cache.insert(key((0, 0)), Arc::new(7));
        assert_eq!(*cache.get(&key((0, 0))).unwrap(), 7);
        assert!(cache.get(&key((0, 1))).is_none());
        assert_eq!(cache.counters(), (1, 2));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn generation_separates_entries() {
        let cache: LocateCache<u32> = LocateCache::new(2, 16);
        cache.insert(key((5, 5)), Arc::new(1));
        let newer = CacheKey {
            generation: 2,
            ..key((5, 5))
        };
        assert!(cache.get(&newer).is_none());
        cache.insert(newer.clone(), Arc::new(2));
        assert_eq!(*cache.get(&newer).unwrap(), 2);
        assert_eq!(*cache.get(&key((5, 5))).unwrap(), 1);
    }

    #[test]
    fn evicts_least_recently_used_within_a_shard() {
        // One shard, capacity 2: inserting a third entry evicts the LRU one.
        let cache: LocateCache<i64> = LocateCache::new(1, 2);
        cache.insert(key((1, 0)), Arc::new(1));
        cache.insert(key((2, 0)), Arc::new(2));
        // Touch (1,0) so (2,0) becomes the LRU entry.
        assert!(cache.get(&key((1, 0))).is_some());
        cache.insert(key((3, 0)), Arc::new(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key((2, 0))).is_none());
        assert!(cache.get(&key((1, 0))).is_some());
        assert!(cache.get(&key((3, 0))).is_some());
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let cache: LocateCache<i64> = LocateCache::new(1, 2);
        cache.insert(key((1, 0)), Arc::new(1));
        cache.insert(key((2, 0)), Arc::new(2));
        cache.insert(key((1, 0)), Arc::new(10));
        assert_eq!(cache.len(), 2);
        assert_eq!(*cache.get(&key((1, 0))).unwrap(), 10);
        assert_eq!(*cache.get(&key((2, 0))).unwrap(), 2);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache: Arc<LocateCache<u64>> = Arc::new(LocateCache::new(8, 256));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..200 {
                        let k = key(((i % 32) as i64, t as i64));
                        cache.insert(k.clone(), Arc::new(i));
                        let _ = cache.get(&k);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let (hits, misses) = cache.counters();
        assert_eq!(hits + misses, 800);
    }
}
