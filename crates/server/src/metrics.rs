//! Lock-free serving metrics: per-endpoint counters and latency histograms.
//!
//! Every request bumps a request/error counter and adds its latency to a
//! log₂-bucketed histogram (bucket *i* covers `[2^i, 2^(i+1))` µs), all
//! plain relaxed atomics — the hot path never takes a lock. Quantiles are
//! reconstructed from the histogram on `/stats` reads; with power-of-two
//! buckets they are accurate to within a factor of two, which is what a
//! serving dashboard needs.

use std::sync::atomic::{AtomicU64, Ordering};

/// Histogram buckets: log₂ microseconds, 0 µs .. ≥ 2³¹ µs (~36 min).
const BUCKETS: usize = 32;

/// Counters for one endpoint.
#[derive(Debug, Default)]
pub struct EndpointMetrics {
    requests: AtomicU64,
    errors: AtomicU64,
    total_micros: AtomicU64,
    histogram: [AtomicU64; BUCKETS],
}

impl EndpointMetrics {
    /// Records one request's latency and outcome.
    pub fn record(&self, micros: u64, is_error: bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if is_error {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.total_micros.fetch_add(micros, Ordering::Relaxed);
        let bucket = (64 - micros.leading_zeros() as usize).min(BUCKETS - 1);
        self.histogram[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Total requests recorded.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Requests that answered with an error status.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds.
    pub fn mean_micros(&self) -> f64 {
        let n = self.requests();
        if n == 0 {
            return 0.0;
        }
        self.total_micros.load(Ordering::Relaxed) as f64 / n as f64
    }

    /// Approximate latency quantile (`q` in `[0, 1]`) in microseconds,
    /// reconstructed from the histogram (upper edge of the holding bucket).
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .histogram
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Bucket i holds latencies in [2^(i-1), 2^i) µs (bucket 0: 0).
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        1u64 << (BUCKETS - 1)
    }
}

/// Resilience counters: the events the serving stack survives rather than
/// serves. All relaxed atomics, exported on `/stats` under `"resilience"`.
#[derive(Debug, Default)]
pub struct ResilienceMetrics {
    /// Handler panics caught by the request-level `catch_unwind` (each one
    /// answered `500` instead of killing a worker).
    pub panics_caught: AtomicU64,
    /// Worker threads that died anyway and were respawned by the pool
    /// supervisor.
    pub workers_respawned: AtomicU64,
    /// Connections shed at dequeue because they had already waited past the
    /// request deadline (answered `503` + `Retry-After`).
    pub queue_shed: AtomicU64,
    /// Requests whose evaluation was cancelled at the deadline (answered
    /// `504` with partial-progress stats).
    pub deadline_timeouts: AtomicU64,
}

impl ResilienceMetrics {
    /// Bumps a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads a counter.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

/// Scan-layer telemetry: what the parallel group scans behind `locate`,
/// `solve`, and `topk` actually did. Totals accumulate over the process
/// lifetime; the `last_*` gauges hold the most recent scan so a dashboard
/// (or the load generator) can see per-request magnitudes without deltas.
/// All relaxed atomics, exported on `/stats` under `"scan"`.
#[derive(Debug, Default)]
pub struct ScanMetrics {
    scans: AtomicU64,
    groups_evaluated: AtomicU64,
    groups_pruned: AtomicU64,
    scan_micros: AtomicU64,
    last_groups_evaluated: AtomicU64,
    last_groups_pruned: AtomicU64,
    last_scan_micros: AtomicU64,
}

impl ScanMetrics {
    /// Records one completed scan: how many groups it walked, how many the
    /// cost bound discarded (prefilter + prune), and its wall time.
    pub fn record(&self, evaluated: u64, pruned: u64, micros: u64) {
        self.scans.fetch_add(1, Ordering::Relaxed);
        self.groups_evaluated
            .fetch_add(evaluated, Ordering::Relaxed);
        self.groups_pruned.fetch_add(pruned, Ordering::Relaxed);
        self.scan_micros.fetch_add(micros, Ordering::Relaxed);
        self.last_groups_evaluated
            .store(evaluated, Ordering::Relaxed);
        self.last_groups_pruned.store(pruned, Ordering::Relaxed);
        self.last_scan_micros.store(micros, Ordering::Relaxed);
    }

    /// Completed scans.
    pub fn scans(&self) -> u64 {
        self.scans.load(Ordering::Relaxed)
    }

    /// Groups walked across all scans.
    pub fn groups_evaluated(&self) -> u64 {
        self.groups_evaluated.load(Ordering::Relaxed)
    }

    /// Groups the cost bound discarded across all scans.
    pub fn groups_pruned(&self) -> u64 {
        self.groups_pruned.load(Ordering::Relaxed)
    }

    /// Total scan wall time in microseconds.
    pub fn scan_micros(&self) -> u64 {
        self.scan_micros.load(Ordering::Relaxed)
    }

    /// `(groups evaluated, groups pruned, wall µs)` of the most recent scan.
    pub fn last(&self) -> (u64, u64, u64) {
        (
            self.last_groups_evaluated.load(Ordering::Relaxed),
            self.last_groups_pruned.load(Ordering::Relaxed),
            self.last_scan_micros.load(Ordering::Relaxed),
        )
    }
}

/// Transport-layer telemetry: what the socket layer is doing, independent
/// of which requests it carries. Exported on `/stats` under `"transport"`.
///
/// The pool transport reports `accepted` / `open_connections` /
/// `overload_shed`; the epoll transport additionally tracks ready-queue
/// depth and read/write stalls (a stall = a parse or flush that had to
/// wait for the socket to become ready again).
#[derive(Debug, Default)]
pub struct TransportMetrics {
    /// Which transport is serving: `0` none, `1` pool, `2` epoll.
    pub kind: AtomicU64,
    /// Connections accepted since start.
    pub accepted: AtomicU64,
    /// Currently open connections (gauge).
    pub open_connections: AtomicU64,
    /// Parsed requests currently queued for a compute worker (gauge;
    /// epoll transport only).
    pub ready_queue_depth: AtomicU64,
    /// Reads that returned `WouldBlock` mid-message (epoll transport).
    pub read_stalls: AtomicU64,
    /// Writes that returned `WouldBlock` mid-response (epoll transport).
    pub write_stalls: AtomicU64,
    /// Connections answered `503 server overloaded` because the admission
    /// queue (pool) or job queue (epoll) was full.
    pub overload_shed: AtomicU64,
}

impl TransportMetrics {
    /// Decrements a gauge by one (saturating at zero is the caller's
    /// responsibility to preserve — inc/dec must pair).
    pub fn dec(counter: &AtomicU64) {
        counter.fetch_sub(1, Ordering::Relaxed);
    }

    /// The label for the `kind` counter value.
    pub fn kind_name(&self) -> &'static str {
        match self.kind.load(Ordering::Relaxed) {
            1 => "pool",
            2 => "epoll",
            _ => "none",
        }
    }
}

/// Batch-endpoint telemetry: how much work batching actually amortized.
/// A batch of `items` queries that resolved to `scans` distinct snapshot
/// sweeps amortized `items - scans` evaluations. Exported on `/stats`
/// under `"batch"`.
#[derive(Debug, Default)]
pub struct BatchMetrics {
    batches: AtomicU64,
    items: AtomicU64,
    scans: AtomicU64,
    last_items: AtomicU64,
    last_scans: AtomicU64,
    last_batch_micros: AtomicU64,
}

impl BatchMetrics {
    /// Records one completed batch request.
    pub fn record(&self, items: u64, scans: u64, micros: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.items.fetch_add(items, Ordering::Relaxed);
        self.scans.fetch_add(scans, Ordering::Relaxed);
        self.last_items.store(items, Ordering::Relaxed);
        self.last_scans.store(scans, Ordering::Relaxed);
        self.last_batch_micros.store(micros, Ordering::Relaxed);
    }

    /// Completed batch requests.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Query items across all batches.
    pub fn items(&self) -> u64 {
        self.items.load(Ordering::Relaxed)
    }

    /// Distinct evaluations actually performed across all batches.
    pub fn scans(&self) -> u64 {
        self.scans.load(Ordering::Relaxed)
    }

    /// Items answered from another item's evaluation (the amortized work).
    pub fn amortized_items(&self) -> u64 {
        self.items().saturating_sub(self.scans())
    }

    /// `(items, scans, wall µs)` of the most recent batch.
    pub fn last(&self) -> (u64, u64, u64) {
        (
            self.last_items.load(Ordering::Relaxed),
            self.last_scans.load(Ordering::Relaxed),
            self.last_batch_micros.load(Ordering::Relaxed),
        )
    }
}

/// The server's metrics registry, one [`EndpointMetrics`] per route.
#[derive(Debug, Default)]
pub struct Metrics {
    /// `/locate`.
    pub locate: EndpointMetrics,
    /// `/solve`.
    pub solve: EndpointMetrics,
    /// `/solve_batch`.
    pub solve_batch: EndpointMetrics,
    /// `/topk`.
    pub topk: EndpointMetrics,
    /// `/topk_batch`.
    pub topk_batch: EndpointMetrics,
    /// `/health`.
    pub health: EndpointMetrics,
    /// `/stats`.
    pub stats: EndpointMetrics,
    /// `/reload`.
    pub reload: EndpointMetrics,
    /// `/datasets/:name/objects[/:id]` (live insert/delete).
    pub update: EndpointMetrics,
    /// Anything unrouted.
    pub other: EndpointMetrics,
    /// Survival counters (panics, respawns, shedding, timeouts).
    pub resilience: ResilienceMetrics,
    /// Group-scan telemetry (evaluated/pruned groups, scan wall time).
    pub scan: ScanMetrics,
    /// Socket-layer telemetry (connections, queue depth, stalls).
    pub transport: TransportMetrics,
    /// Batch-endpoint amortization telemetry.
    pub batch: BatchMetrics,
}

impl Metrics {
    /// Iterates `(route name, endpoint metrics)` in display order.
    pub fn endpoints(&self) -> [(&'static str, &EndpointMetrics); 10] {
        [
            ("locate", &self.locate),
            ("solve", &self.solve),
            ("solve_batch", &self.solve_batch),
            ("topk", &self.topk),
            ("topk_batch", &self.topk_batch),
            ("health", &self.health),
            ("stats", &self.stats),
            ("reload", &self.reload),
            ("update", &self.update),
            ("other", &self.other),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_counts_and_errors() {
        let m = EndpointMetrics::default();
        m.record(10, false);
        m.record(20, true);
        m.record(30, false);
        assert_eq!(m.requests(), 3);
        assert_eq!(m.errors(), 1);
        assert_eq!(m.mean_micros(), 20.0);
    }

    #[test]
    fn quantiles_bracket_the_samples() {
        let m = EndpointMetrics::default();
        for _ in 0..99 {
            m.record(100, false); // bucket for 100 µs: [64, 128)
        }
        m.record(100_000, false); // one slow outlier
        let p50 = m.quantile_micros(0.5);
        assert!((64..=128).contains(&p50), "p50 = {p50}");
        let p99 = m.quantile_micros(0.99);
        assert!(p99 <= 128, "p99 = {p99}");
        let p100 = m.quantile_micros(1.0);
        assert!(p100 >= 65_536, "p100 = {p100}");
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let m = EndpointMetrics::default();
        assert_eq!(m.quantile_micros(0.5), 0);
        assert_eq!(m.mean_micros(), 0.0);
    }

    #[test]
    fn zero_latency_lands_in_bucket_zero() {
        let m = EndpointMetrics::default();
        m.record(0, false);
        assert_eq!(m.quantile_micros(1.0), 0);
    }

    #[test]
    fn resilience_counters_bump_independently() {
        let m = Metrics::default();
        ResilienceMetrics::bump(&m.resilience.panics_caught);
        ResilienceMetrics::bump(&m.resilience.panics_caught);
        ResilienceMetrics::bump(&m.resilience.queue_shed);
        assert_eq!(ResilienceMetrics::get(&m.resilience.panics_caught), 2);
        assert_eq!(ResilienceMetrics::get(&m.resilience.queue_shed), 1);
        assert_eq!(ResilienceMetrics::get(&m.resilience.workers_respawned), 0);
        assert_eq!(ResilienceMetrics::get(&m.resilience.deadline_timeouts), 0);
    }

    #[test]
    fn scan_metrics_accumulate_totals_and_track_last() {
        let m = ScanMetrics::default();
        assert_eq!(m.scans(), 0);
        assert_eq!(m.last(), (0, 0, 0));
        m.record(100, 40, 2_000);
        m.record(60, 10, 500);
        assert_eq!(m.scans(), 2);
        assert_eq!(m.groups_evaluated(), 160);
        assert_eq!(m.groups_pruned(), 50);
        assert_eq!(m.scan_micros(), 2_500);
        assert_eq!(m.last(), (60, 10, 500));
    }

    #[test]
    fn registry_enumerates_all_routes() {
        let m = Metrics::default();
        m.locate.record(5, false);
        let names: Vec<&str> = m.endpoints().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            [
                "locate",
                "solve",
                "solve_batch",
                "topk",
                "topk_batch",
                "health",
                "stats",
                "reload",
                "update",
                "other"
            ]
        );
        assert_eq!(m.endpoints()[0].1.requests(), 1);
    }

    #[test]
    fn transport_gauges_pair_inc_and_dec() {
        let t = TransportMetrics::default();
        assert_eq!(t.kind_name(), "none");
        t.kind.store(2, Ordering::Relaxed);
        assert_eq!(t.kind_name(), "epoll");
        ResilienceMetrics::bump(&t.open_connections);
        ResilienceMetrics::bump(&t.open_connections);
        TransportMetrics::dec(&t.open_connections);
        assert_eq!(ResilienceMetrics::get(&t.open_connections), 1);
    }

    #[test]
    fn batch_metrics_track_amortization() {
        let b = BatchMetrics::default();
        b.record(8, 3, 1_000);
        b.record(4, 4, 200);
        assert_eq!(b.batches(), 2);
        assert_eq!(b.items(), 12);
        assert_eq!(b.scans(), 7);
        assert_eq!(b.amortized_items(), 5);
        assert_eq!(b.last(), (4, 4, 200));
    }
}
