//! `molq-server` — an HTTP serving system over the MOLQ library.
//!
//! The paper's pipeline ends at an answer; this crate turns the repository
//! into a long-running service around the observation that the expensive
//! step — building the MOVD — is a **once-per-dataset** cost, after which
//! point location (`/locate`), optimal-location queries (`/solve`), and
//! ranked candidates (`/topk`) are cheap reads of the prebuilt diagram.
//!
//! Three layers, each its own module:
//!
//! * **engine** ([`engine`]): loads CSV layers, runs the MOVD Overlapper
//!   once, and publishes the result as an immutable [`engine::Snapshot`]
//!   behind an `Arc` — named multi-dataset support with atomic snapshot
//!   swaps on reload.
//! * **service** ([`service`]): the API — `locate`, `solve`, `topk`, the
//!   batched `solve_batch`/`topk_batch` (one snapshot pin + one sweep per
//!   distinct item, responses byte-identical to individual calls),
//!   `health`, `stats`, `reload` — plus a sharded LRU cache ([`cache`]) for
//!   `locate` keyed on quantized coordinates, and lock-free per-endpoint
//!   metrics ([`metrics`]). Named datasets can be spread over engine
//!   replicas with deterministic rendezvous routing ([`shard`]).
//! * **transport** ([`http`]): two interchangeable dependency-free HTTP/1.1
//!   servers on `std::net` speaking the hand-rolled JSON of [`json`] — the
//!   default blocking worker pool (bounded accept queue with `503`
//!   push-back, per-connection read timeouts), and a readiness event loop
//!   ([`epoll`], Linux only; selected via [`http::Transport`], `--transport`
//!   or `MOLQ_TRANSPORT`) that multiplexes thousands of connections onto
//!   one reactor plus the same compute pool. Both shed, time out, and shut
//!   down gracefully with identical semantics. A matching minimal client
//!   lives in [`client`] for tests and the load generator.
//!
//! A cross-cutting **resilience** layer hardens all three: per-request
//! deadlines with cooperative cancellation (`504` with partial progress),
//! panic isolation around request handling plus worker respawn, deadline-aware
//! load shedding (`503` + `Retry-After`), a per-dataset rebuild circuit
//! breaker in [`engine`], and a runtime-armed fault-injection harness
//! ([`fault`]) that makes every one of those claims testable.
//!
//! ```no_run
//! use molq_server::engine::{DatasetSpec, Engine};
//! use molq_server::http::{start, ServerConfig};
//! use molq_server::service::Service;
//! use std::sync::Arc;
//!
//! let engine = Engine::new();
//! engine.load(DatasetSpec::new("default", vec!["stm.csv".into(), "sch.csv".into()])).unwrap();
//! let handle = start(Arc::new(Service::new(engine)), ServerConfig::default()).unwrap();
//! println!("serving on http://{}", handle.addr());
//! ```

pub mod cache;
pub mod client;
pub mod engine;
#[cfg(target_os = "linux")]
pub mod epoll;
pub mod fault;
pub mod http;
pub mod json;
pub mod metrics;
pub(crate) mod proto;
pub mod service;
pub mod shard;

pub use client::{Client, ClientResponse};
pub use engine::{
    BreakerConfig, DatasetSpec, DurabilityReport, Engine, ReloadError, Snapshot, UpdateError,
};
pub use http::{start, ServerConfig, ServerHandle, Transport};
pub use json::Json;
pub use service::{ApiResponse, Request, Service, ServiceConfig};
pub use shard::ShardedEngine;
