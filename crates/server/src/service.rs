//! The service layer: transport-agnostic request handling.
//!
//! [`Service::handle`] maps an API [`Request`] (method, path, decoded query
//! parameters) to a JSON [`ApiResponse`], timing and counting every call.
//! The HTTP transport in [`crate::http`] is a thin socket adapter around
//! this, which is also why the end-to-end tests can drive the exact serving
//! logic through plain TCP.
//!
//! Two resilience mechanisms live here:
//!
//! * **Deadlines.** Every expensive endpoint (`locate`, `solve`, `topk`)
//!   evaluates under a [`CancelToken`] whose deadline is the configured
//!   [`ServiceConfig::request_timeout`], optionally tightened per-request
//!   with `?deadline_ms=`. Work that outlives the deadline stops at the next
//!   checkpoint and answers `504` with partial-progress counters instead of
//!   occupying a worker indefinitely.
//! * **Panic isolation.** Dispatch runs under `catch_unwind`: a panicking
//!   handler answers `500` (and bumps `resilience.panics_caught`) while the
//!   worker thread lives on.

use crate::cache::{CacheKey, LocateCache};
use crate::engine::{Engine, ReloadError, Snapshot, UpdateError};
use crate::fault::{self, FaultAction};
use crate::json::Json;
use crate::metrics::{EndpointMetrics, Metrics, ResilienceMetrics};
use crate::shard::ShardedEngine;
use molq_core::prelude::*;
use molq_core::weights::wgd;
use molq_geom::Point;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A transport-agnostic API request.
#[derive(Debug, Clone, Default)]
pub struct Request {
    /// HTTP method (`GET`, `POST`).
    pub method: String,
    /// Path without the query string (`/locate`).
    pub path: String,
    /// Decoded query parameters in order of appearance.
    pub params: Vec<(String, String)>,
    /// Raw request body (empty for bodiless requests). The batch endpoints
    /// read their JSON query lists from here.
    pub body: Vec<u8>,
}

impl Request {
    /// A GET request for `path` with the given query parameters.
    pub fn get(path: &str, params: &[(&str, &str)]) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            params: params
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            body: Vec::new(),
        }
    }

    /// A POST request for `path` carrying a JSON `body`.
    pub fn post_json(path: &str, body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            params: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn param(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn f64_param(&self, key: &str) -> Result<f64, ApiError> {
        let raw = self
            .param(key)
            .ok_or_else(|| ApiError::bad_request(format!("missing parameter {key:?}")))?;
        raw.parse()
            .map_err(|e| ApiError::bad_request(format!("parameter {key:?}: {e}")))
    }

    /// Like [`Request::f64_param`] but a missing parameter yields `default`
    /// (a present-but-unparseable one is still a `400`).
    fn f64_param_or(&self, key: &str, default: f64) -> Result<f64, ApiError> {
        match self.param(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|e| ApiError::bad_request(format!("parameter {key:?}: {e}"))),
        }
    }
}

/// A JSON response with an HTTP status code.
#[derive(Debug, Clone, PartialEq)]
pub struct ApiResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: Json,
    /// Seconds the client should wait before retrying (emitted as a
    /// `Retry-After` header by the transport); set on `503` shedding.
    pub retry_after: Option<u64>,
}

impl ApiResponse {
    fn ok(body: Json) -> ApiResponse {
        ApiResponse {
            status: 200,
            body,
            retry_after: None,
        }
    }

    fn accepted(body: Json) -> ApiResponse {
        ApiResponse {
            status: 202,
            body,
            retry_after: None,
        }
    }

    /// `true` for non-2xx responses.
    pub fn is_error(&self) -> bool {
        self.status >= 400
    }
}

struct ApiError {
    status: u16,
    message: String,
    /// `Retry-After` seconds (503 responses).
    retry_after: Option<u64>,
    /// `(completed, total)` work units for deadline timeouts (504).
    progress: Option<(usize, usize)>,
}

impl ApiError {
    fn new(status: u16, message: String) -> ApiError {
        ApiError {
            status,
            message,
            retry_after: None,
            progress: None,
        }
    }

    fn bad_request(message: String) -> ApiError {
        ApiError::new(400, message)
    }

    fn not_found(message: String) -> ApiError {
        ApiError::new(404, message)
    }

    fn into_response(self) -> ApiResponse {
        let mut body = Json::obj().set("error", self.message);
        if let Some((completed, total)) = self.progress {
            body = body
                .set("completed_groups", completed)
                .set("total_groups", total);
        }
        if let Some(secs) = self.retry_after {
            body = body.set("retry_after_s", secs);
        }
        ApiResponse {
            status: self.status,
            body,
            retry_after: self.retry_after,
        }
    }
}

/// A cached `locate` answer (shared between the cache and responses).
#[derive(Debug)]
struct LocateAnswer {
    evaluated_at: Point,
    ovr_id: usize,
    cost: f64,
    group: Vec<ObjectRef>,
}

/// Default number of cache shards.
const CACHE_SHARDS: usize = 8;
/// Default total cache capacity (entries).
const CACHE_CAPACITY: usize = 4096;

/// Service-level knobs (everything transport-independent).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Upper bound on per-request evaluation time; the effective deadline is
    /// `min(request_timeout, ?deadline_ms=)`. Also the staleness bound for
    /// queue shedding in the HTTP transport.
    pub request_timeout: Duration,
    /// Worker threads for the group scans behind `locate`/`solve`/`topk`
    /// (and for Overlapper rebuilds). Answers are bit-identical at any
    /// setting; `1` runs the scans inline on the request thread.
    pub threads: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            request_timeout: Duration::from_secs(10),
            threads: ExecConfig::from_env()
                .unwrap_or_else(ExecConfig::auto)
                .threads,
        }
    }
}

/// The MOLQ service: engine shards + cache + metrics.
pub struct Service {
    engines: ShardedEngine,
    cache: LocateCache<LocateAnswer>,
    metrics: Metrics,
    config: ServiceConfig,
    exec: ExecConfig,
}

impl Service {
    /// Wraps an engine with a default-sized cache, fresh metrics, and
    /// default config.
    pub fn new(engine: Engine) -> Service {
        Service::with_config(engine, ServiceConfig::default())
    }

    /// [`Service::new`] with explicit configuration. The configured thread
    /// count also becomes the engine's build parallelism, so reloads run
    /// the Overlapper on the same pool width as request scans.
    pub fn with_config(engine: Engine, config: ServiceConfig) -> Service {
        Service::sharded(ShardedEngine::from_engine(engine), config)
    }

    /// A service over engine replicas with deterministic dataset routing
    /// (see [`ShardedEngine`]). Single-replica construction via
    /// [`Service::new`] is the identity case of this.
    pub fn sharded(engines: ShardedEngine, config: ServiceConfig) -> Service {
        let exec = ExecConfig::new(config.threads);
        engines.set_exec_config(exec);
        Service {
            engines,
            cache: LocateCache::new(CACHE_SHARDS, CACHE_CAPACITY),
            metrics: Metrics::default(),
            config,
            exec,
        }
    }

    /// The first engine shard (the only one under default construction —
    /// e.g. to load datasets after [`Service::new`]). With multiple shards,
    /// prefer [`Service::engines`] and route by name.
    pub fn engine(&self) -> &Engine {
        &self.engines.shards()[0]
    }

    /// The sharded engine layer and its routing.
    pub fn engines(&self) -> &ShardedEngine {
        &self.engines
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Dispatches a request, recording latency and outcome per endpoint.
    ///
    /// Dispatch runs under `catch_unwind`: a panic anywhere in a handler is
    /// converted to a `500` response (and counted) instead of unwinding into
    /// — and killing — the calling worker thread.
    pub fn handle(&self, req: &Request) -> ApiResponse {
        let start = Instant::now();
        let endpoint = self.endpoint_for(&req.path);
        let response = catch_unwind(AssertUnwindSafe(|| self.dispatch(req))).unwrap_or_else(|_| {
            ResilienceMetrics::bump(&self.metrics.resilience.panics_caught);
            ApiError::new(500, "request handler panicked (worker survived)".into()).into_response()
        });
        let micros = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        endpoint.record(micros, response.is_error());
        response
    }

    fn endpoint_for(&self, path: &str) -> &EndpointMetrics {
        match path {
            "/locate" => &self.metrics.locate,
            "/solve" => &self.metrics.solve,
            "/solve_batch" => &self.metrics.solve_batch,
            "/topk" => &self.metrics.topk,
            "/topk_batch" => &self.metrics.topk_batch,
            "/health" => &self.metrics.health,
            "/stats" => &self.metrics.stats,
            "/reload" => &self.metrics.reload,
            p if p.starts_with("/datasets/") => &self.metrics.update,
            _ => &self.metrics.other,
        }
    }

    fn dispatch(&self, req: &Request) -> ApiResponse {
        let result = fault::fail_point("service.handle")
            .map_err(|e| ApiError::new(500, format!("injected failure: {e}")))
            .and_then(|()| match req.path.as_str() {
                "/locate" => self.locate(req),
                "/solve" => self.solve(req),
                "/solve_batch" => self.batch(req, BatchKind::Solve),
                "/topk" => self.topk(req),
                "/topk_batch" => self.batch(req, BatchKind::Topk),
                "/health" => Ok(self.health()),
                "/stats" => Ok(self.stats()),
                "/reload" => self.reload(req),
                p if p.starts_with("/datasets/") => self.update(req),
                _ => Err(ApiError::not_found(format!("no route {:?}", req.path))),
            });
        result.unwrap_or_else(ApiError::into_response)
    }

    /// Builds the cancellation token for one expensive request: deadline at
    /// `min(request_timeout, ?deadline_ms=)` from now, plus any armed
    /// `service.slow` fault as a per-checkpoint throttle.
    fn cancel_token(&self, req: &Request) -> Result<CancelToken, ApiError> {
        let mut timeout = self.config.request_timeout;
        if let Some(raw) = req.param("deadline_ms") {
            let ms: u64 = raw
                .parse()
                .map_err(|e| ApiError::bad_request(format!("parameter \"deadline_ms\": {e}")))?;
            timeout = timeout.min(Duration::from_millis(ms));
        }
        let mut token = CancelToken::with_deadline(Instant::now() + timeout);
        if let Some(FaultAction::Sleep(delay)) = fault::take("service.slow") {
            token = token.with_checkpoint_delay(delay);
        }
        Ok(token)
    }

    /// Converts a timed-out evaluation into a `504` carrying how far it got.
    fn timeout_error(&self, completed: usize, total: usize) -> ApiError {
        ResilienceMetrics::bump(&self.metrics.resilience.deadline_timeouts);
        ApiError {
            progress: Some((completed, total)),
            ..ApiError::new(
                504,
                format!("deadline exceeded after {completed} of {total} groups"),
            )
        }
    }

    /// Records one optimizer scan into the scan telemetry: every OVR group
    /// the scan walked, how many the cost bound discarded, and the scan's
    /// wall time since `start`.
    fn record_scan(&self, groups: usize, stats: &molq_fw::BatchStats, start: Instant) {
        self.metrics.scan.record(
            groups as u64,
            (stats.prefiltered_groups + stats.pruned_groups) as u64,
            start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
        );
    }

    /// Maps a core error: `Cancelled` → `504` + progress, the rest → `400`.
    fn molq_error(&self, e: MolqError) -> ApiError {
        match e {
            MolqError::Cancelled { completed, total } => self.timeout_error(completed, total),
            other => ApiError::bad_request(other.to_string()),
        }
    }

    fn snapshot(&self, req: &Request) -> Result<Arc<Snapshot>, ApiError> {
        let name = req.param("dataset").unwrap_or("default");
        self.snapshot_named(name)
    }

    /// Resolves `name` through the shard routing; the error body is shared
    /// with the single-query endpoints so batch items fail byte-identically.
    fn snapshot_named(&self, name: &str) -> Result<Arc<Snapshot>, ApiError> {
        self.engines
            .get(name)
            .ok_or_else(|| ApiError::not_found(format!("no dataset {name:?}")))
    }

    /// `GET /locate?x=..&y=..[&dataset=..]` — the serving objects at a
    /// location. The location is snapped to the snapshot's cache lattice;
    /// the snapped coordinate is reported back as `evaluated_at`.
    fn locate(&self, req: &Request) -> Result<ApiResponse, ApiError> {
        let snap = self.snapshot(req)?;
        let l = Point::new(req.f64_param("x")?, req.f64_param("y")?);
        if !snap.query.bounds.contains(l) {
            return Err(ApiError::bad_request(format!(
                "({}, {}) is outside the dataset bounds",
                l.x, l.y
            )));
        }
        let (cell, snapped) = snap.quantize(l);
        let key = CacheKey {
            dataset: snap.spec.name.clone(),
            generation: snap.generation,
            cell,
        };
        let (answer, cached) = match self.cache.get(&key) {
            Some(hit) => (hit, true),
            None => {
                let cancel = self.cancel_token(req)?;
                let answer = Arc::new(self.locate_uncached(&snap, snapped, &cancel)?);
                self.cache.insert(key, Arc::clone(&answer));
                (answer, false)
            }
        };
        let group = answer
            .group
            .iter()
            .map(|r| {
                let set = &snap.query.sets[r.set];
                let o = &set.objects[r.index];
                Json::obj()
                    .set("set", set.name.as_str())
                    .set("index", r.index)
                    .set("x", o.loc.x)
                    .set("y", o.loc.y)
                    .set("w_t", o.w_t)
                    .set("w_o", o.w_o)
            })
            .collect::<Vec<_>>();
        Ok(ApiResponse::ok(
            Json::obj()
                .set("dataset", snap.spec.name.as_str())
                .set("generation", snap.generation)
                .set(
                    "evaluated_at",
                    Json::obj()
                        .set("x", answer.evaluated_at.x)
                        .set("y", answer.evaluated_at.y),
                )
                .set("ovr_id", answer.ovr_id)
                .set("cost", answer.cost)
                .set("group", group)
                .set("cached", cached),
        ))
    }

    fn locate_uncached(
        &self,
        snap: &Snapshot,
        l: Point,
        cancel: &CancelToken,
    ) -> Result<LocateAnswer, ApiError> {
        // MBRB candidate rectangles are false-positive supersets, so the
        // containing OVRs are disambiguated by actual group cost; under RRB
        // there is one candidate away from boundaries and this reduces to
        // plain point location. The candidate sweep is the expensive part,
        // so it runs on the scan layer: parallel across candidates when the
        // service has threads, checkpointing the deadline either way.
        let ids = snap.index.locate_candidate_ids(l);
        let start = Instant::now();
        let scan = GroupScan::new(ids.len(), self.exec, cancel);
        let out = scan
            .run(|i, _| {
                let id = ids[i];
                Some((id, wgd(l, &snap.query, snap.index.group(id))))
            })
            .map_err(|e| self.molq_error(e))?;
        // Reduce by (cost, id): the exact total order the sequential sweep
        // applied, so the parallel answer is bit-identical.
        let mut best: Option<(usize, f64)> = None;
        for &(_, (id, cost)) in &out.items {
            let better = match best {
                None => true,
                Some((bid, bc)) => cost.total_cmp(&bc).then(id.cmp(&bid)).is_lt(),
            };
            if better {
                best = Some((id, cost));
            }
        }
        self.metrics.scan.record(
            ids.len() as u64,
            0,
            start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
        );
        let (ovr_id, cost) = best.ok_or_else(|| {
            ApiError::not_found(format!("({}, {}) is not covered by any OVR", l.x, l.y))
        })?;
        Ok(LocateAnswer {
            evaluated_at: l,
            ovr_id,
            cost,
            group: snap.index.group(ovr_id).to_vec(),
        })
    }

    /// `GET /solve[?dataset=..]` — the optimal location, from the prebuilt
    /// MOVD via the cost-bound optimizer.
    fn solve(&self, req: &Request) -> Result<ApiResponse, ApiError> {
        let snap = self.snapshot(req)?;
        let cancel = self.cancel_token(req)?;
        Ok(ApiResponse::ok(self.solve_body(&snap, &cancel)?))
    }

    /// The `/solve` evaluation and response body. Shared with
    /// `/solve_batch`, so a batch item's body is byte-identical to the
    /// individual endpoint's by construction.
    fn solve_body(&self, snap: &Snapshot, cancel: &CancelToken) -> Result<Json, ApiError> {
        let start = Instant::now();
        let answer = solve_arena_cancellable_with(
            &snap.query,
            snap.index.arena(),
            snap.lanes(),
            cancel,
            self.exec,
        )
        .map_err(|e| self.molq_error(e))?
        .with_certified_factor(snap.build_meta.certified_factor());
        self.record_scan(answer.ovr_count, &answer.stats, start);
        Ok(Json::obj()
            .set("dataset", snap.spec.name.as_str())
            .set("generation", snap.generation)
            .set(
                "location",
                Json::obj()
                    .set("x", answer.location.x)
                    .set("y", answer.location.y),
            )
            .set("cost", answer.cost)
            .set("certified_factor", answer.certified_factor)
            .set("cost_lower_bound", answer.cost_lower_bound())
            .set("ovr_count", answer.ovr_count))
    }

    /// `GET /topk?k=..[&dataset=..]` — the k best distinct locations.
    fn topk(&self, req: &Request) -> Result<ApiResponse, ApiError> {
        let snap = self.snapshot(req)?;
        let k = match req.param("k") {
            None => DEFAULT_K,
            Some(raw) => parse_k(raw)?,
        };
        let cancel = self.cancel_token(req)?;
        Ok(ApiResponse::ok(self.topk_body(&snap, k, &cancel)?))
    }

    /// The `/topk` evaluation and response body, shared with `/topk_batch`
    /// (same byte-identity contract as [`Service::solve_body`]).
    fn topk_body(&self, snap: &Snapshot, k: usize, cancel: &CancelToken) -> Result<Json, ApiError> {
        let start = Instant::now();
        let answer = solve_topk_arena_cancellable_with(
            &snap.query,
            snap.index.arena(),
            snap.lanes(),
            k,
            cancel,
            self.exec,
        )
        .map_err(|e| self.molq_error(e))?
        .with_certified_factor(snap.build_meta.certified_factor());
        self.record_scan(answer.ovr_count, &answer.stats, start);
        let candidates = answer
            .candidates
            .iter()
            .map(|c| {
                Json::obj()
                    .set("x", c.location.x)
                    .set("y", c.location.y)
                    .set("cost", c.cost)
            })
            .collect::<Vec<_>>();
        Ok(Json::obj()
            .set("dataset", snap.spec.name.as_str())
            .set("generation", snap.generation)
            .set("k", k)
            .set("certified_factor", answer.certified_factor)
            .set("candidates", candidates))
    }

    /// `POST /solve_batch` / `POST /topk_batch` — N queries, one request.
    ///
    /// The body is a JSON array of items (or `{"queries": [...]}`), each
    /// `{"dataset": name}` (plus `"k"` for top-k; both fields optional with
    /// the same defaults as the single-query endpoints). As a load-test
    /// convenience, an empty body with `?n=K` replicates the default query
    /// `K` times.
    ///
    /// Distinct `(dataset, k)` keys are evaluated **once** — one snapshot
    /// pin, one cancellable sweep — and the resulting body is shared by
    /// every item with that key, so a batch of N identical queries costs
    /// one scan. Each item's `body` is byte-identical to what the
    /// individual endpoint would return (including `404` for unknown
    /// datasets and `504` with partial-progress counters on deadline);
    /// the enclosing response is always `200` with per-item `status`.
    /// The whole batch runs under a single deadline token.
    fn batch(&self, req: &Request, kind: BatchKind) -> Result<ApiResponse, ApiError> {
        if req.method != "POST" {
            return Err(ApiError::bad_request(format!(
                "{} requires POST",
                kind.path()
            )));
        }
        let items = parse_batch_items(req, kind)?;
        let cancel = self.cancel_token(req)?;
        let start = Instant::now();
        let mut computed: Vec<(BatchItem, (u16, Json))> = Vec::new();
        let mut scans = 0u64;
        let mut results = Vec::with_capacity(items.len());
        for item in &items {
            let hit = computed.iter().find(|(key, _)| key == item);
            let (status, body) = match hit {
                Some((_, cached)) => cached.clone(),
                None => {
                    let outcome = match self.batch_item_body(kind, item, &cancel, &mut scans) {
                        Ok(body) => (200, body),
                        Err(e) => {
                            let resp = e.into_response();
                            (resp.status, resp.body)
                        }
                    };
                    computed.push((item.clone(), outcome.clone()));
                    outcome
                }
            };
            results.push(
                Json::obj()
                    .set("status", u64::from(status))
                    .set("body", body),
            );
        }
        let micros = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        let items_n = items.len() as u64;
        self.metrics.batch.record(items_n, scans, micros);
        Ok(ApiResponse::ok(
            Json::obj().set("results", results).set(
                "batch",
                Json::obj()
                    .set("items", items_n)
                    .set("scans", scans)
                    .set("amortized_items", items_n - scans)
                    .set("batch_us", micros),
            ),
        ))
    }

    /// One distinct batch key's evaluation: resolve the snapshot through
    /// the shard routing, validate `k`, then run the shared body builder —
    /// the same order as the individual endpoints, so error precedence
    /// matches too. `scans` counts only keys that actually swept (a `404`
    /// or invalid `k` does no work).
    fn batch_item_body(
        &self,
        kind: BatchKind,
        item: &BatchItem,
        cancel: &CancelToken,
        scans: &mut u64,
    ) -> Result<Json, ApiError> {
        let snap = self.snapshot_named(&item.dataset)?;
        match kind {
            BatchKind::Solve => {
                *scans += 1;
                self.solve_body(&snap, cancel)
            }
            BatchKind::Topk => {
                let k = match &item.k {
                    None => DEFAULT_K,
                    Some(raw) => parse_k(raw)?,
                };
                *scans += 1;
                self.topk_body(&snap, k, cancel)
            }
        }
    }

    /// `GET /health` — liveness, loaded datasets, rebuild-breaker state, and
    /// storage durability. Reports `"degraded"` while any dataset's breaker
    /// is open (its old generation keeps serving; only rebuilds are
    /// suspended) or while the most recent durable write — journal append or
    /// snapshot save — failed (serving continues; updates answer `507`).
    fn health(&self) -> ApiResponse {
        let names = self.engines.names();
        let reports = self.engines.breaker_reports();
        let durability = self.engines.durability();
        let degraded = reports.iter().any(|r| r.retry_in.is_some()) || durability.degraded;
        let breakers = reports
            .iter()
            .map(|r| {
                Json::obj()
                    .set("dataset", r.dataset.as_str())
                    .set("consecutive_failures", u64::from(r.consecutive_failures))
                    .set("open", r.retry_in.is_some())
                    .set(
                        "retry_in_ms",
                        match r.retry_in {
                            Some(d) => Json::from(d.as_millis().min(u128::from(u64::MAX)) as u64),
                            None => Json::Null,
                        },
                    )
                    .set("last_error", r.last_error.as_str())
            })
            .collect::<Vec<_>>();
        ApiResponse::ok(
            Json::obj()
                .set("status", if degraded { "degraded" } else { "ok" })
                .set(
                    "datasets",
                    names
                        .iter()
                        .map(|n| Json::Str(n.clone()))
                        .collect::<Vec<_>>(),
                )
                .set("breakers", breakers)
                .set(
                    "durability",
                    Json::obj().set("degraded", durability.degraded).set(
                        "last_error",
                        match durability.last_error {
                            Some(e) => Json::Str(e),
                            None => Json::Null,
                        },
                    ),
                ),
        )
    }

    /// `GET /stats` — per-endpoint counters/latency, cache, datasets.
    fn stats(&self) -> ApiResponse {
        let mut endpoints = Json::obj();
        for (name, m) in self.metrics.endpoints() {
            endpoints = endpoints.set(
                name,
                Json::obj()
                    .set("requests", m.requests())
                    .set("errors", m.errors())
                    .set("mean_us", m.mean_micros())
                    .set("p50_us", m.quantile_micros(0.5))
                    .set("p99_us", m.quantile_micros(0.99)),
            );
        }
        let (hits, misses) = self.cache.counters();
        let datasets = self
            .engines
            .names()
            .iter()
            .filter_map(|n| self.engines.get(n))
            .map(|s| {
                Json::obj()
                    .set("name", s.spec.name.as_str())
                    .set("generation", s.generation)
                    .set("epoch", s.update_epoch)
                    .set(
                        "mode",
                        if s.build_meta.mode.is_approx() {
                            "approx"
                        } else {
                            "exact"
                        },
                    )
                    .set("sets", s.set_count())
                    .set("objects", s.object_count())
                    .set("ovrs", s.index.len())
            })
            .collect::<Vec<_>>();
        let approx = self
            .engines
            .names()
            .iter()
            .filter_map(|n| self.engines.get(n))
            .filter(|s| s.build_meta.mode.is_approx())
            .map(|s| {
                let b = &s.build_meta;
                Json::obj()
                    .set("dataset", s.spec.name.as_str())
                    .set("epsilon", b.mode.epsilon())
                    .set("certified_factor", b.certified_factor())
                    .set("leaves", b.leaves)
                    .set("cells_visited", b.cells_visited)
                    .set("refinement_depth", u64::from(b.refinement_depth))
                    .set("forced_leaves", b.forced_leaves)
                    .set("fully_certified", b.fully_certified())
            })
            .collect::<Vec<_>>();
        let builds = self
            .engines
            .builds_in_flight()
            .into_iter()
            .map(|(name, generation)| {
                Json::obj()
                    .set("dataset", name.as_str())
                    .set("target_generation", generation)
            })
            .collect::<Vec<_>>();
        let r = &self.metrics.resilience;
        let resilience = Json::obj()
            .set("panics_caught", ResilienceMetrics::get(&r.panics_caught))
            .set(
                "workers_respawned",
                ResilienceMetrics::get(&r.workers_respawned),
            )
            .set("queue_shed", ResilienceMetrics::get(&r.queue_shed))
            .set(
                "deadline_timeouts",
                ResilienceMetrics::get(&r.deadline_timeouts),
            );
        let s = &self.metrics.scan;
        let (last_evaluated, last_pruned, last_us) = s.last();
        let scan = Json::obj()
            .set("threads", self.config.threads)
            .set("scans", s.scans())
            .set("groups_evaluated", s.groups_evaluated())
            .set("groups_pruned", s.groups_pruned())
            .set("scan_time_us", s.scan_micros())
            .set("last_groups_evaluated", last_evaluated)
            .set("last_groups_pruned", last_pruned)
            .set("last_scan_us", last_us);
        let u = self.engines.update_stats();
        let updates = Json::obj()
            .set("applied", u.applied)
            .set("rejected", u.rejected)
            .set("replayed", u.replayed)
            .set("compactions", u.compactions)
            .set("full_rebuilds", u.full_rebuilds)
            .set("cells_reclipped", u.cells_reclipped)
            .set("patch_time_us", u.patch_micros_total)
            .set("last_patch_us", u.last_patch_micros);
        let ar = self.engines.arena_stats();
        let buffers = self
            .engines
            .names()
            .iter()
            .filter_map(|n| self.engines.get(n))
            .map(|s| {
                let b = s.index.arena().buffer_bytes();
                Json::obj()
                    .set("dataset", s.spec.name.as_str())
                    .set("kinds", b.kinds)
                    .set("poly_off", b.poly_off)
                    .set("vert_off", b.vert_off)
                    .set("verts", b.verts)
                    .set("group_off", b.group_off)
                    .set("pois", b.pois)
                    .set("total", b.total())
            })
            .collect::<Vec<_>>();
        let arena_stats = Json::obj()
            .set("buffers", buffers)
            .set("last_restore_copy_us", ar.last_restore_copy_micros)
            .set("last_restore_validate_us", ar.last_restore_validate_micros)
            .set("segments_copied_total", ar.segments_copied_total)
            .set("last_segments_copied", ar.last_segments_copied);
        let dr = self.engines.durability();
        let durability = Json::obj()
            .set("append_failures", dr.append_failures)
            .set("save_retries", dr.save_retries)
            .set("save_failures", dr.save_failures)
            .set("salvages", dr.salvages)
            .set("torn_tails", dr.torn_tails)
            .set("journals_set_aside", dr.journals_set_aside)
            .set("tmp_swept", dr.tmp_swept)
            .set("degraded", dr.degraded)
            .set(
                "last_error",
                match dr.last_error {
                    Some(e) => Json::Str(e),
                    None => Json::Null,
                },
            );
        let t = &self.metrics.transport;
        let transport = Json::obj()
            .set("kind", t.kind_name())
            .set("accepted", ResilienceMetrics::get(&t.accepted))
            .set(
                "open_connections",
                ResilienceMetrics::get(&t.open_connections),
            )
            .set(
                "ready_queue_depth",
                ResilienceMetrics::get(&t.ready_queue_depth),
            )
            .set("read_stalls", ResilienceMetrics::get(&t.read_stalls))
            .set("write_stalls", ResilienceMetrics::get(&t.write_stalls))
            .set("overload_shed", ResilienceMetrics::get(&t.overload_shed));
        let b = &self.metrics.batch;
        let (last_items, last_scans, last_batch_us) = b.last();
        let batch = Json::obj()
            .set("batches", b.batches())
            .set("items", b.items())
            .set("scans", b.scans())
            .set("amortized_items", b.amortized_items())
            .set("last_items", last_items)
            .set("last_scans", last_scans)
            .set("last_batch_us", last_batch_us);
        let shard_rows = self
            .engines
            .shards()
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                let names = shard.names();
                Json::obj()
                    .set("shard", i)
                    .set("datasets", names.len())
                    .set(
                        "names",
                        names.into_iter().map(Json::Str).collect::<Vec<_>>(),
                    )
            })
            .collect::<Vec<_>>();
        let shards = Json::obj()
            .set("count", self.engines.shard_count())
            .set("assignments", shard_rows);
        ApiResponse::ok(
            Json::obj()
                .set("endpoints", endpoints)
                .set(
                    "cache",
                    Json::obj()
                        .set("hits", hits)
                        .set("misses", misses)
                        .set("entries", self.cache.len()),
                )
                .set("datasets", datasets)
                .set("approx", approx)
                .set("builds", builds)
                .set("resilience", resilience)
                .set("scan", scan)
                .set("updates", updates)
                .set("arena_stats", arena_stats)
                .set("durability", durability)
                .set("transport", transport)
                .set("batch", batch)
                .set("shards", shards),
        )
    }

    /// `POST /reload[?dataset=..][&wait=1]` — rebuild a dataset from its spec
    /// and swap the snapshot atomically.
    ///
    /// By default the rebuild runs on a background thread and the response is
    /// an immediate `202 Accepted` carrying the generation the build will
    /// publish as; requests keep being served from the old snapshot until the
    /// swap. A repeated reload while a build is in flight joins it
    /// (`already_building: true`) rather than stacking builds. `wait=1` keeps
    /// the old synchronous behaviour: block until the swap and answer `200`.
    fn reload(&self, req: &Request) -> Result<ApiResponse, ApiError> {
        if req.method != "POST" {
            return Err(ApiError::bad_request("reload requires POST".into()));
        }
        let name = req.param("dataset").unwrap_or("default");
        // `?epsilon=` switches the construction mode for this and later
        // rebuilds: 0 back to exact, a positive value to the quadtree
        // (1+ε) approximate pipeline.
        let mode = match req.param("epsilon") {
            None => None,
            Some(raw) => {
                let e: f64 = raw
                    .parse()
                    .map_err(|e| ApiError::bad_request(format!("parameter \"epsilon\": {e}")))?;
                if !e.is_finite() || e < 0.0 {
                    return Err(ApiError::bad_request(
                        "parameter \"epsilon\" must be a finite non-negative number".into(),
                    ));
                }
                Some(BuildMode::from_epsilon(Some(e)))
            }
        };
        if matches!(req.param("wait"), Some("1") | Some("true")) {
            let snap = self
                .engines
                .reload_with_mode(name, mode)
                .map_err(reload_error)?;
            return Ok(ApiResponse::ok(
                Json::obj()
                    .set("dataset", snap.spec.name.as_str())
                    .set("generation", snap.generation)
                    .set(
                        "mode",
                        if snap.build_meta.mode.is_approx() {
                            "approx"
                        } else {
                            "exact"
                        },
                    )
                    .set("epsilon", snap.build_meta.mode.epsilon())
                    .set("status", "ready"),
            ));
        }
        let ticket = self
            .engines
            .engine_for(name)
            .reload_background_with_mode(name, mode)
            .map_err(reload_error)?;
        Ok(ApiResponse::accepted(
            Json::obj()
                .set("dataset", name)
                .set("generation", ticket.target_generation)
                .set("status", "building")
                .set("already_building", ticket.already_building),
        ))
    }

    /// Live-update routes:
    ///
    /// * `POST /datasets/:name/objects?set=..&x=..&y=..[&w_t=..][&w_o=..]`
    ///   inserts one object (weights default to `1`);
    /// * `DELETE /datasets/:name/objects/:index?set=..` removes the object
    ///   at `index` within its set.
    ///
    /// Both go through the engine's in-place patch path: the journal record
    /// is durable before the patched snapshot is published as a new
    /// generation, and queries never observe a half-applied state.
    fn update(&self, req: &Request) -> Result<ApiResponse, ApiError> {
        let rest = req.path.strip_prefix("/datasets/").unwrap_or_default();
        let (name, id) = if let Some(name) = rest.strip_suffix("/objects") {
            (name, None)
        } else if let Some((name, raw)) = rest.rsplit_once("/objects/") {
            let id = raw
                .parse::<usize>()
                .map_err(|e| ApiError::bad_request(format!("object id {raw:?}: {e}")))?;
            (name, Some(id))
        } else {
            return Err(ApiError::not_found(format!("no route {:?}", req.path)));
        };
        let snap = self
            .engines
            .get(name)
            .ok_or_else(|| ApiError::not_found(format!("no dataset {name:?}")))?;
        let set = resolve_set(&snap, req)?;
        let update = match (req.method.as_str(), id) {
            ("POST", None) => Update::Insert {
                set,
                object: SpatialObject {
                    loc: Point::new(req.f64_param("x")?, req.f64_param("y")?),
                    w_t: req.f64_param_or("w_t", 1.0)?,
                    w_o: req.f64_param_or("w_o", 1.0)?,
                },
            },
            ("DELETE", Some(index)) => Update::Remove { set, index },
            ("POST", Some(_)) => {
                return Err(ApiError::bad_request(
                    "insert does not take an object id (POST .../objects)".into(),
                ))
            }
            ("DELETE", None) => {
                return Err(ApiError::bad_request(
                    "delete requires an object id (DELETE .../objects/:index)".into(),
                ))
            }
            (m, _) => {
                return Err(ApiError::bad_request(format!(
                    "unsupported method {m:?} for live updates"
                )))
            }
        };
        let kind = match update {
            Update::Insert { .. } => "insert",
            Update::Remove { .. } => "remove",
        };
        let outcome = self
            .engines
            .engine_for(name)
            .apply_update(name, &update)
            .map_err(|e| match e {
                UpdateError::NotFound(m) => ApiError::not_found(m),
                UpdateError::Rejected(m) => ApiError::bad_request(m),
                UpdateError::Conflict(m) => ApiError::new(409, m),
                // 507 Insufficient Storage: applied in memory but could not
                // be made durable; the engine rolled it back.
                UpdateError::Durability(m) => ApiError::new(507, m),
            })?;
        let stats = &outcome.stats;
        Ok(ApiResponse::ok(
            Json::obj()
                .set("dataset", outcome.snapshot.spec.name.as_str())
                .set("generation", outcome.snapshot.generation)
                .set("epoch", outcome.snapshot.update_epoch)
                .set("applied", kind)
                .set("objects", outcome.snapshot.object_count())
                .set("full_rebuild", outcome.full_rebuild)
                .set("cells_reclipped", stats.cells_reclipped)
                .set("ovrs_kept", stats.ovrs_kept)
                .set("ovrs_rederived", stats.ovrs_rederived)
                .set("grid_patched", stats.grid_patched)
                .set(
                    "patch_us",
                    stats.wall.as_micros().min(u128::from(u64::MAX)) as u64,
                ),
        ))
    }
}

/// Resolves the required `set=` parameter against a snapshot: by set name
/// first, then as a plain index into the set list.
fn resolve_set(snap: &Snapshot, req: &Request) -> Result<usize, ApiError> {
    let raw = req
        .param("set")
        .ok_or_else(|| ApiError::bad_request("missing parameter \"set\"".into()))?;
    if let Some(i) = snap.query.sets.iter().position(|s| s.name == raw) {
        return Ok(i);
    }
    raw.parse::<usize>()
        .ok()
        .filter(|i| *i < snap.query.sets.len())
        .ok_or_else(|| {
            ApiError::bad_request(format!(
                "set {raw:?} names no object set (and is not a valid index)"
            ))
        })
}

/// Default `k` for `/topk` and `/topk_batch` items.
const DEFAULT_K: usize = 5;

/// Most items one batch request may carry.
const MAX_BATCH_ITEMS: usize = 1024;

/// Which single-query endpoint a batch amortizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BatchKind {
    /// `/solve_batch`.
    Solve,
    /// `/topk_batch`.
    Topk,
}

impl BatchKind {
    fn path(self) -> &'static str {
        match self {
            BatchKind::Solve => "/solve_batch",
            BatchKind::Topk => "/topk_batch",
        }
    }
}

/// One batch item, which is also the dedup key: items with equal keys
/// share one evaluation. `k` stays raw text so invalid values fail with
/// the same `400` body the individual endpoint produces.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BatchItem {
    dataset: String,
    k: Option<String>,
}

/// Validates a `k` value exactly like `GET /topk?k=` does.
fn parse_k(raw: &str) -> Result<usize, ApiError> {
    raw.parse::<usize>()
        .ok()
        .filter(|k| (1..=1000).contains(k))
        .ok_or_else(|| {
            ApiError::bad_request(format!("parameter \"k\": {raw:?} is not in 1..=1000"))
        })
}

/// Decodes the batch body: a JSON array of items or `{"queries": [...]}`;
/// an empty body with `?n=K` replicates the default query `K` times.
/// Keys are normalized so deduplication sees effective parameters: for
/// `/solve_batch`, item `k` fields are dropped (they do not affect the
/// answer), and for `/topk_batch` a missing `k` becomes the default's raw
/// text — `{}` and `{"k": 5}` are one key.
fn parse_batch_items(req: &Request, kind: BatchKind) -> Result<Vec<BatchItem>, ApiError> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| ApiError::bad_request("batch body is not UTF-8".into()))?;
    let items: Vec<BatchItem> = if text.trim().is_empty() {
        let n_raw = req.param("n").ok_or_else(|| {
            ApiError::bad_request(format!(
                "{} takes a JSON body of queries (or ?n= to replicate one query)",
                kind.path()
            ))
        })?;
        let n: usize = n_raw
            .parse()
            .map_err(|e| ApiError::bad_request(format!("parameter \"n\": {e}")))?;
        let item = BatchItem {
            dataset: req.param("dataset").unwrap_or("default").to_string(),
            k: match kind {
                BatchKind::Solve => None,
                BatchKind::Topk => Some(
                    req.param("k")
                        .map_or_else(|| DEFAULT_K.to_string(), str::to_string),
                ),
            },
        };
        vec![item; n]
    } else {
        let json =
            Json::parse(text).map_err(|e| ApiError::bad_request(format!("batch body: {e}")))?;
        let arr = match json.as_arr() {
            Some(arr) => arr,
            None => json.get("queries").and_then(Json::as_arr).ok_or_else(|| {
                ApiError::bad_request(
                    "batch body must be a JSON array or {\"queries\": [...]}".into(),
                )
            })?,
        };
        arr.iter()
            .map(|item| BatchItem {
                dataset: item
                    .get("dataset")
                    .and_then(Json::as_str)
                    .unwrap_or("default")
                    .to_string(),
                k: match kind {
                    BatchKind::Solve => None,
                    BatchKind::Topk => Some(item.get("k").map_or_else(
                        || DEFAULT_K.to_string(),
                        |v| match v {
                            Json::Str(s) => s.clone(),
                            other => other.encode(),
                        },
                    )),
                },
            })
            .collect()
    };
    if items.is_empty() {
        return Err(ApiError::bad_request("empty batch".into()));
    }
    if items.len() > MAX_BATCH_ITEMS {
        return Err(ApiError::bad_request(format!(
            "batch of {} items exceeds the {MAX_BATCH_ITEMS}-item cap",
            items.len()
        )));
    }
    Ok(items)
}

/// Maps a rebuild error: open breaker → `503` + `Retry-After` (rounded up
/// to whole seconds), anything else → `400`.
fn reload_error(e: ReloadError) -> ApiError {
    let message = e.to_string();
    match e {
        ReloadError::BreakerOpen { retry_in, .. } => ApiError {
            retry_after: Some((retry_in.as_millis().div_ceil(1000).max(1)) as u64),
            ..ApiError::new(503, message)
        },
        ReloadError::Failed(_) => ApiError::bad_request(message),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DatasetSpec;
    use molq_core::weights::mwgd;
    use molq_geom::Mbr;

    fn pseudo_set(name: &str, w_t: f64, n: usize, seed: u64) -> ObjectSet {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as f64 / u32::MAX as f64
        };
        ObjectSet::uniform(
            name,
            w_t,
            (0..n)
                .map(|_| Point::new(next() * 100.0, next() * 100.0))
                .collect(),
        )
    }

    fn service(boundary: Boundary) -> Service {
        let engine = Engine::new();
        engine
            .load_from_sets(
                DatasetSpec {
                    boundary,
                    bounds: Some(Mbr::new(0.0, 0.0, 100.0, 100.0)),
                    eps: 1e-9,
                    ..DatasetSpec::new("default", Vec::new())
                },
                vec![
                    pseudo_set("a", 2.0, 12, 31),
                    pseudo_set("b", 1.0, 14, 32),
                    pseudo_set("c", 1.5, 10, 33),
                ],
            )
            .unwrap();
        Service::new(engine)
    }

    #[test]
    fn locate_matches_the_library_oracle() {
        for boundary in [Boundary::Rrb, Boundary::Mbrb] {
            let svc = service(boundary);
            let snap = svc.engine().get("default").unwrap();
            for gi in 0..20 {
                let x = (gi as f64 * 7.9 + 1.3) % 100.0;
                let y = (gi as f64 * 12.7 + 2.9) % 100.0;
                let resp = svc.handle(&Request::get(
                    "/locate",
                    &[("x", &x.to_string()), ("y", &y.to_string())],
                ));
                assert_eq!(resp.status, 200, "{:?}", resp.body);
                let at = resp.body.get("evaluated_at").unwrap();
                let snapped = Point::new(
                    at.get("x").unwrap().as_f64().unwrap(),
                    at.get("y").unwrap().as_f64().unwrap(),
                );
                let cost = resp.body.get("cost").unwrap().as_f64().unwrap();
                // Cost-disambiguated locate equals MWGD at the snapped point
                // in both boundary modes (Property 5).
                let oracle = mwgd(snapped, &snap.query);
                assert!(
                    (cost - oracle).abs() <= 1e-9 * oracle.max(1.0),
                    "{boundary:?}: {cost} vs {oracle}"
                );
                assert_eq!(resp.body.get("group").unwrap().as_arr().unwrap().len(), 3);
            }
        }
    }

    #[test]
    fn locate_caches_quantized_cells() {
        let svc = service(Boundary::Rrb);
        let first = svc.handle(&Request::get("/locate", &[("x", "10.5"), ("y", "20.5")]));
        assert_eq!(first.body.get("cached"), Some(&Json::Bool(false)));
        let again = svc.handle(&Request::get("/locate", &[("x", "10.5"), ("y", "20.5")]));
        assert_eq!(again.body.get("cached"), Some(&Json::Bool(true)));
        assert_eq!(first.body.get("cost"), again.body.get("cost"));
        // A (synchronous) reload bumps the generation, invalidating the
        // cache key.
        let reload = svc.handle(&Request {
            method: "POST".into(),
            ..Request::get("/reload", &[("wait", "1")])
        });
        assert_eq!(reload.status, 200, "{:?}", reload.body);
        let fresh = svc.handle(&Request::get("/locate", &[("x", "10.5"), ("y", "20.5")]));
        assert_eq!(fresh.body.get("cached"), Some(&Json::Bool(false)));
        assert_eq!(fresh.body.get("generation").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn solve_and_topk_match_direct_library_calls() {
        let svc = service(Boundary::Rrb);
        let snap = svc.engine().get("default").unwrap();
        let direct = solve_rrb(&snap.query).unwrap();

        let solve = svc.handle(&Request::get("/solve", &[]));
        assert_eq!(solve.status, 200, "{:?}", solve.body);
        let cost = solve.body.get("cost").unwrap().as_f64().unwrap();
        assert!((cost - direct.cost).abs() <= 1e-9 * direct.cost);

        let topk = svc.handle(&Request::get("/topk", &[("k", "3")]));
        assert_eq!(topk.status, 200, "{:?}", topk.body);
        let candidates = topk.body.get("candidates").unwrap().as_arr().unwrap();
        assert!(!candidates.is_empty() && candidates.len() <= 3);
        let expected = solve_topk_prebuilt(&snap.query, snap.index.movd(), 3).unwrap();
        for (got, want) in candidates.iter().zip(expected.candidates.iter()) {
            let c = got.get("cost").unwrap().as_f64().unwrap();
            assert!((c - want.cost).abs() <= 1e-9 * want.cost.max(1.0));
        }
    }

    #[test]
    fn error_paths_report_json_errors() {
        let svc = service(Boundary::Rrb);
        for (req, status) in [
            (Request::get("/nope", &[]), 404),
            (Request::get("/locate", &[("x", "1")]), 400),
            (Request::get("/locate", &[("x", "a"), ("y", "2")]), 400),
            (Request::get("/locate", &[("x", "-50"), ("y", "2")]), 400),
            (
                Request::get("/locate", &[("x", "1"), ("y", "2"), ("dataset", "zz")]),
                404,
            ),
            (Request::get("/topk", &[("k", "0")]), 400),
            (Request::get("/reload", &[]), 400),
        ] {
            let resp = svc.handle(&req);
            assert_eq!(resp.status, status, "{req:?}");
            assert!(resp.body.get("error").is_some(), "{req:?}");
        }
    }

    #[test]
    fn reload_returns_202_without_blocking_on_the_build() {
        use std::time::{Duration, Instant};
        let svc = service(Boundary::Rrb);
        svc.engine().set_build_delay(Duration::from_millis(150));

        let post = |params: &[(&str, &str)]| Request {
            method: "POST".into(),
            ..Request::get("/reload", params)
        };
        let start = Instant::now();
        let resp = svc.handle(&post(&[]));
        assert!(
            start.elapsed() < Duration::from_millis(100),
            "async reload blocked for {:?}",
            start.elapsed()
        );
        assert_eq!(resp.status, 202, "{:?}", resp.body);
        assert_eq!(resp.body.get("status").unwrap().as_str(), Some("building"));
        assert_eq!(resp.body.get("generation").unwrap().as_u64(), Some(2));
        assert_eq!(resp.body.get("already_building"), Some(&Json::Bool(false)));
        // The old snapshot keeps serving while the build is in flight, and
        // /stats reports the build.
        assert_eq!(svc.engine().get("default").unwrap().generation, 1);
        let stats = svc.handle(&Request::get("/stats", &[]));
        let builds = stats.body.get("builds").unwrap().as_arr().unwrap();
        assert_eq!(builds.len(), 1);
        assert_eq!(builds[0].get("dataset").unwrap().as_str(), Some("default"));
        assert_eq!(
            builds[0].get("target_generation").unwrap().as_u64(),
            Some(2)
        );
        // A second reload joins the in-flight build.
        let again = svc.handle(&post(&[]));
        assert_eq!(again.status, 202);
        assert_eq!(again.body.get("already_building"), Some(&Json::Bool(true)));
        // Eventually the build publishes generation 2.
        let deadline = Instant::now() + Duration::from_secs(10);
        while svc.engine().get("default").unwrap().generation != 2 {
            assert!(Instant::now() < deadline, "background build never landed");
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn zero_deadline_times_out_with_partial_progress() {
        let svc = service(Boundary::Rrb);
        for path in ["/solve", "/topk"] {
            let resp = svc.handle(&Request::get(path, &[("deadline_ms", "0")]));
            assert_eq!(resp.status, 504, "{path}: {:?}", resp.body);
            assert_eq!(resp.body.get("completed_groups").unwrap().as_u64(), Some(0));
            assert!(resp.body.get("total_groups").unwrap().as_u64().unwrap() > 0);
        }
        // locate's candidate sweep checkpoints too (uncached path).
        let resp = svc.handle(&Request::get(
            "/locate",
            &[("x", "42.5"), ("y", "47.5"), ("deadline_ms", "0")],
        ));
        assert_eq!(resp.status, 504, "{:?}", resp.body);
        // A malformed deadline is a 400, not a timeout.
        let resp = svc.handle(&Request::get("/solve", &[("deadline_ms", "soon")]));
        assert_eq!(resp.status, 400);
        // Each cancellation was counted and shows up on /stats.
        let stats = svc.handle(&Request::get("/stats", &[]));
        let resilience = stats.body.get("resilience").unwrap();
        assert_eq!(
            resilience.get("deadline_timeouts").unwrap().as_u64(),
            Some(3)
        );
        assert_eq!(resilience.get("panics_caught").unwrap().as_u64(), Some(0));
        // Untimed requests still answer normally afterwards.
        assert_eq!(svc.handle(&Request::get("/solve", &[])).status, 200);
    }

    #[test]
    fn open_breaker_degrades_health_and_sheds_reloads() {
        use crate::engine::BreakerConfig;
        use std::time::Duration;

        let dir = std::env::temp_dir().join("molq_server_service_breaker");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut paths = Vec::new();
        for (name, seed) in [("a", 51u64), ("b", 52)] {
            let path = dir.join(format!("{name}.csv"));
            let mut f = std::fs::File::create(&path).unwrap();
            molq_datagen::csv::write_csv(&pseudo_set(name, 1.0, 10, seed), &mut f).unwrap();
            paths.push(path);
        }
        let engine = Engine::new();
        engine.set_breaker_config(BreakerConfig {
            threshold: 1,
            base_backoff: Duration::from_millis(60),
            max_backoff: Duration::from_secs(1),
        });
        engine
            .load(DatasetSpec {
                bounds: Some(Mbr::new(0.0, 0.0, 100.0, 100.0)),
                ..DatasetSpec::new("default", paths.clone())
            })
            .unwrap();
        let svc = Service::new(engine);
        let post = |params: &[(&str, &str)]| Request {
            method: "POST".into(),
            ..Request::get("/reload", params)
        };

        let health = svc.handle(&Request::get("/health", &[]));
        assert_eq!(health.body.get("status").unwrap().as_str(), Some("ok"));
        assert!(health
            .body
            .get("breakers")
            .unwrap()
            .as_arr()
            .unwrap()
            .is_empty());

        // Break the source; threshold 1 opens the breaker on first failure.
        let saved = std::fs::read(&paths[0]).unwrap();
        std::fs::remove_file(&paths[0]).unwrap();
        assert_eq!(svc.handle(&post(&[("wait", "1")])).status, 400);
        let health = svc.handle(&Request::get("/health", &[]));
        assert_eq!(
            health.body.get("status").unwrap().as_str(),
            Some("degraded")
        );
        let breakers = health.body.get("breakers").unwrap().as_arr().unwrap();
        assert_eq!(breakers.len(), 1);
        assert_eq!(breakers[0].get("open"), Some(&Json::Bool(true)));
        assert!(breakers[0].get("retry_in_ms").unwrap().as_u64().is_some());

        // While open: reloads answer 503 + Retry-After without rebuilding,
        // and the old generation keeps serving queries.
        let shed = svc.handle(&post(&[("wait", "1")]));
        assert_eq!(shed.status, 503, "{:?}", shed.body);
        assert_eq!(shed.retry_after, Some(1));
        assert!(shed
            .body
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("breaker open"));
        assert_eq!(svc.engine().get("default").unwrap().generation, 1);
        assert_eq!(svc.handle(&Request::get("/solve", &[])).status, 200);

        // Repair + wait out the backoff: the probe succeeds, health recovers.
        std::fs::write(&paths[0], &saved).unwrap();
        std::thread::sleep(Duration::from_millis(90));
        let ok = svc.handle(&post(&[("wait", "1")]));
        assert_eq!(ok.status, 200, "{:?}", ok.body);
        assert_eq!(svc.engine().get("default").unwrap().generation, 2);
        let health = svc.handle(&Request::get("/health", &[]));
        assert_eq!(health.body.get("status").unwrap().as_str(), Some("ok"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn live_update_routes_insert_delete_and_count_on_stats() {
        let svc = service(Boundary::Rrb);
        let n0 = svc.engine().get("default").unwrap().object_count();
        let post = |path: &str, params: &[(&str, &str)]| Request {
            method: "POST".into(),
            ..Request::get(path, params)
        };
        let delete = |path: &str, params: &[(&str, &str)]| Request {
            method: "DELETE".into(),
            ..Request::get(path, params)
        };

        // Insert publishes a patched generation with one more object.
        let resp = svc.handle(&post(
            "/datasets/default/objects",
            &[("set", "a"), ("x", "33.25"), ("y", "44.5"), ("w_o", "2")],
        ));
        assert_eq!(resp.status, 200, "{:?}", resp.body);
        assert_eq!(resp.body.get("applied").unwrap().as_str(), Some("insert"));
        assert_eq!(resp.body.get("generation").unwrap().as_u64(), Some(2));
        let snap = svc.engine().get("default").unwrap();
        assert_eq!(snap.object_count(), n0 + 1);

        // The patched snapshot serves immediately: locate at the inserted
        // point reports the new object in set "a"'s slot of the group.
        let resp = svc.handle(&Request::get("/locate", &[("x", "33.25"), ("y", "44.5")]));
        assert_eq!(resp.status, 200, "{:?}", resp.body);
        let group = resp.body.get("group").unwrap().as_arr().unwrap();
        assert!(group
            .iter()
            .any(|g| g.get("set").unwrap().as_str() == Some("a")
                && g.get("x").unwrap().as_f64() == Some(33.25)
                && g.get("y").unwrap().as_f64() == Some(44.5)));

        // Delete the inserted object (it was appended to set "a").
        let index = snap.query.sets[0].objects.len() - 1;
        let resp = svc.handle(&delete(
            &format!("/datasets/default/objects/{index}"),
            &[("set", "a")],
        ));
        assert_eq!(resp.status, 200, "{:?}", resp.body);
        assert_eq!(resp.body.get("applied").unwrap().as_str(), Some("remove"));
        assert_eq!(resp.body.get("generation").unwrap().as_u64(), Some(3));
        assert_eq!(svc.engine().get("default").unwrap().object_count(), n0);

        // Error paths: unknown dataset, unknown set, missing coordinates,
        // out-of-range delete index, duplicate insert.
        for (req, status) in [
            (
                post(
                    "/datasets/zz/objects",
                    &[("set", "a"), ("x", "1"), ("y", "2")],
                ),
                404,
            ),
            (
                post(
                    "/datasets/default/objects",
                    &[("set", "zz"), ("x", "1"), ("y", "2")],
                ),
                400,
            ),
            (post("/datasets/default/objects", &[("set", "a")]), 400),
            (
                delete("/datasets/default/objects/9999", &[("set", "a")]),
                400,
            ),
            (delete("/datasets/default/objects", &[("set", "a")]), 400),
            (post("/datasets/default/objects/3", &[("set", "a")]), 400),
            (Request::get("/datasets/default/nope", &[]), 404),
        ] {
            let resp = svc.handle(&req);
            assert_eq!(resp.status, status, "{req:?} => {:?}", resp.body);
            assert!(resp.body.get("error").is_some(), "{req:?}");
        }
        // Rejections never publish: still generation 3.
        assert_eq!(svc.engine().get("default").unwrap().generation, 3);

        // /stats exposes the update counters under "updates" and routes the
        // dataset paths to the "update" endpoint metrics.
        let stats = svc.handle(&Request::get("/stats", &[]));
        let updates = stats.body.get("updates").unwrap();
        assert_eq!(updates.get("applied").unwrap().as_u64(), Some(2));
        // Only the out-of-range delete got far enough to be rejected by the
        // engine; the other errors failed request validation first.
        assert_eq!(updates.get("rejected").unwrap().as_u64(), Some(1));
        assert_eq!(updates.get("replayed").unwrap().as_u64(), Some(0));
        assert!(updates.get("patch_time_us").is_some());
        let endpoint = stats.body.get("endpoints").unwrap().get("update").unwrap();
        assert!(endpoint.get("requests").unwrap().as_u64().unwrap() >= 8);
    }

    #[test]
    fn batch_dedupes_equal_keys_and_matches_single_endpoints() {
        let svc = service(Boundary::Rrb);

        // A numeric and a string "k" are the same dedup key (the raw text
        // round-trips through the JSON encoder), so 4 items cost 2 scans:
        // k=5 (thrice, once as the implicit default) and k=3.
        let resp = svc.handle(&Request::post_json(
            "/topk_batch",
            r#"[{"k": 5}, {"k": "5"}, {}, {"k": 3}]"#,
        ));
        assert_eq!(resp.status, 200, "{:?}", resp.body);
        let meta = resp.body.get("batch").unwrap();
        assert_eq!(meta.get("items").unwrap().as_u64(), Some(4));
        assert_eq!(meta.get("scans").unwrap().as_u64(), Some(2));
        assert_eq!(meta.get("amortized_items").unwrap().as_u64(), Some(2));
        let results = resp.body.get("results").unwrap().as_arr().unwrap();
        // Items 0-2 share one body; item 3 differs (k=3).
        assert_eq!(results[0].encode(), results[1].encode());
        assert_eq!(results[0].encode(), results[2].encode());
        assert_ne!(results[0].encode(), results[3].encode());

        // Each body equals the individual endpoint's, byte for byte.
        let single5 = svc.handle(&Request::get("/topk", &[("k", "5")]));
        let single3 = svc.handle(&Request::get("/topk", &[("k", "3")]));
        assert_eq!(
            results[0].get("body").unwrap().encode(),
            single5.body.encode()
        );
        assert_eq!(
            results[3].get("body").unwrap().encode(),
            single3.body.encode()
        );

        // Solve items ignore "k" entirely, so it can't fragment the keys.
        let resp = svc.handle(&Request::post_json(
            "/solve_batch",
            r#"[{}, {"k": 7}, {"dataset": "default"}]"#,
        ));
        assert_eq!(resp.status, 200, "{:?}", resp.body);
        let meta = resp.body.get("batch").unwrap();
        assert_eq!(meta.get("scans").unwrap().as_u64(), Some(1));

        // Failed items dedupe too (one 404 lookup for equal keys), and the
        // enclosing response stays 200.
        let resp = svc.handle(&Request::post_json(
            "/solve_batch",
            r#"[{"dataset": "zz"}, {"dataset": "zz"}]"#,
        ));
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.body
                .get("batch")
                .unwrap()
                .get("scans")
                .unwrap()
                .as_u64(),
            Some(0)
        );
        let results = resp.body.get("results").unwrap().as_arr().unwrap();
        let single = svc.handle(&Request::get("/solve", &[("dataset", "zz")]));
        assert_eq!(single.status, 404);
        for item in results {
            assert_eq!(item.get("status").unwrap().as_u64(), Some(404));
            assert_eq!(item.get("body").unwrap().encode(), single.body.encode());
        }

        // The cap is enforced before any evaluation.
        let huge = format!(
            "[{}]",
            std::iter::repeat("{}")
                .take(1025)
                .collect::<Vec<_>>()
                .join(",")
        );
        let resp = svc.handle(&Request::post_json("/solve_batch", &huge));
        assert_eq!(resp.status, 400, "{:?}", resp.body);
    }

    #[test]
    fn health_and_stats_reflect_traffic() {
        let svc = service(Boundary::Rrb);
        let health = svc.handle(&Request::get("/health", &[]));
        assert_eq!(health.body.get("status").unwrap().as_str(), Some("ok"));

        svc.handle(&Request::get("/locate", &[("x", "5"), ("y", "5")]));
        svc.handle(&Request::get("/locate", &[("x", "5"), ("y", "5")]));
        svc.handle(&Request::get("/locate", &[("x", "bad"), ("y", "5")]));
        let stats = svc.handle(&Request::get("/stats", &[]));
        let locate = stats.body.get("endpoints").unwrap().get("locate").unwrap();
        assert_eq!(locate.get("requests").unwrap().as_u64(), Some(3));
        assert_eq!(locate.get("errors").unwrap().as_u64(), Some(1));
        let cache = stats.body.get("cache").unwrap();
        assert_eq!(cache.get("hits").unwrap().as_u64(), Some(1));
        let datasets = stats.body.get("datasets").unwrap().as_arr().unwrap();
        assert_eq!(datasets.len(), 1);
        assert_eq!(datasets[0].get("sets").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn reload_epsilon_switches_modes_and_stamps_certificates() {
        let svc = service(Boundary::Rrb);
        let exact = svc.handle(&Request::get("/solve", &[]));
        assert_eq!(exact.status, 200, "{:?}", exact.body);
        let exact_cost = exact.body.get("cost").unwrap().as_f64().unwrap();
        assert_eq!(
            exact.body.get("certified_factor").unwrap().as_f64(),
            Some(1.0)
        );

        // A malformed epsilon is a 400, not a rebuild.
        let post = |params: &[(&str, &str)]| Request {
            method: "POST".into(),
            ..Request::get("/reload", params)
        };
        for bad in ["nan", "inf", "-0.5", "zebra"] {
            let resp = svc.handle(&post(&[("wait", "1"), ("epsilon", bad)]));
            assert_eq!(resp.status, 400, "epsilon={bad}: {:?}", resp.body);
        }

        // Synchronous reload into approximate mode.
        let resp = svc.handle(&post(&[("wait", "1"), ("epsilon", "0.25")]));
        assert_eq!(resp.status, 200, "{:?}", resp.body);
        assert_eq!(resp.body.get("mode").unwrap().as_str(), Some("approx"));
        assert_eq!(resp.body.get("epsilon").unwrap().as_f64(), Some(0.25));

        // /stats now reports the dataset as approximate with certificate
        // telemetry.
        let stats = svc.handle(&Request::get("/stats", &[]));
        let datasets = stats.body.get("datasets").unwrap().as_arr().unwrap();
        assert_eq!(datasets[0].get("mode").unwrap().as_str(), Some("approx"));
        let approx = stats.body.get("approx").unwrap().as_arr().unwrap();
        assert_eq!(approx.len(), 1);
        assert_eq!(approx[0].get("epsilon").unwrap().as_f64(), Some(0.25));
        assert!(approx[0].get("leaves").unwrap().as_u64().unwrap() > 0);

        // Approximate answers carry the (1+ε) certificate and bracket the
        // exact optimum.
        let solve = svc.handle(&Request::get("/solve", &[]));
        assert_eq!(solve.status, 200, "{:?}", solve.body);
        let factor = solve
            .body
            .get("certified_factor")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(factor <= 1.25 + 1e-12, "factor {factor}");
        let cost = solve.body.get("cost").unwrap().as_f64().unwrap();
        let lower = solve
            .body
            .get("cost_lower_bound")
            .unwrap()
            .as_f64()
            .unwrap();
        let slack = 1.0 + 1e-9;
        assert!(
            cost <= factor * exact_cost * slack,
            "{cost} vs {exact_cost}"
        );
        assert!(lower <= exact_cost * slack, "{lower} vs {exact_cost}");

        // An approximate base refuses live updates through the API.
        let upd = svc.handle(&Request {
            method: "POST".into(),
            ..Request::get(
                "/datasets/default/objects",
                &[("set", "a"), ("x", "1"), ("y", "1"), ("w_o", "2")],
            )
        });
        assert_eq!(upd.status, 400, "{:?}", upd.body);
        assert!(
            upd.body
                .get("error")
                .unwrap()
                .as_str()
                .unwrap()
                .contains("approximate"),
            "{:?}",
            upd.body
        );

        // `?epsilon=0` reloads back into exact mode and the certificate
        // collapses to 1.
        let back = svc.handle(&post(&[("wait", "1"), ("epsilon", "0")]));
        assert_eq!(back.status, 200, "{:?}", back.body);
        assert_eq!(back.body.get("mode").unwrap().as_str(), Some("exact"));
        let solve = svc.handle(&Request::get("/solve", &[]));
        assert_eq!(
            solve.body.get("certified_factor").unwrap().as_f64(),
            Some(1.0)
        );
        let round_trip = solve.body.get("cost").unwrap().as_f64().unwrap();
        assert_eq!(round_trip.to_bits(), exact_cost.to_bits());
        let stats = svc.handle(&Request::get("/stats", &[]));
        assert!(stats
            .body
            .get("approx")
            .unwrap()
            .as_arr()
            .unwrap()
            .is_empty());
    }
}
