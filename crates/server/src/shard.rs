//! [`ShardedEngine`]: deterministic routing of named datasets across
//! engine replicas.
//!
//! Each [`Engine`] owns its snapshot registry, rebuild breaker, and update
//! journal; sharding multiplies that machinery so datasets spread across
//! independent replicas — a rebuild storm or breaker trip on one shard
//! leaves the others untouched, and on a multi-core host each shard's
//! background builds run on its own engine state without contending on the
//! others' registry locks.
//!
//! Routing is **rendezvous (highest-random-weight) hashing**: a dataset
//! name hashes once per shard (FNV-1a over the name bytes and the shard
//! index) and lives on the shard with the highest score. The placement is
//! a pure function of `(name, shard_count)` — every process computes the
//! same routing with no coordination state to persist — and changing the
//! shard count moves only ~`1/n` of the datasets, rather than reshuffling
//! everything the way `hash % n` would.
//!
//! The single-shard case is the identity: [`ShardedEngine::from_engine`]
//! wraps an existing engine and routes every name to it, so
//! [`crate::Service`] built the pre-sharding way behaves exactly as
//! before.

use crate::engine::{
    ArenaStatsReport, BreakerReport, DatasetSpec, DurabilityReport, Engine, ReloadError, Snapshot,
    UpdateStatsReport,
};
use molq_core::exec::ExecConfig;
use std::sync::Arc;

/// A fixed set of engine replicas with deterministic name-based routing.
pub struct ShardedEngine {
    shards: Vec<Engine>,
}

impl ShardedEngine {
    /// `count` fresh engine replicas (`count` is clamped to at least 1).
    pub fn new(count: usize) -> ShardedEngine {
        ShardedEngine {
            shards: (0..count.max(1)).map(|_| Engine::new()).collect(),
        }
    }

    /// Wraps one existing engine as the sole shard (the identity routing).
    pub fn from_engine(engine: Engine) -> ShardedEngine {
        ShardedEngine {
            shards: vec![engine],
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The replicas, in shard order.
    pub fn shards(&self) -> &[Engine] {
        &self.shards
    }

    /// The shard index owning `name`: the rendezvous winner. Deterministic
    /// across processes and restarts.
    pub fn shard_of(&self, name: &str) -> usize {
        let mut best = 0usize;
        let mut best_score = 0u64;
        for (i, _) in self.shards.iter().enumerate() {
            let score = rendezvous_score(name, i);
            if i == 0 || score > best_score {
                best = i;
                best_score = score;
            }
        }
        best
    }

    /// The engine replica owning `name`.
    pub fn engine_for(&self, name: &str) -> &Engine {
        &self.shards[self.shard_of(name)]
    }

    /// Routes a load to the owning shard.
    pub fn load(&self, spec: DatasetSpec) -> Result<Arc<Snapshot>, String> {
        self.engine_for(&spec.name).load(spec)
    }

    /// Routes a reload to the owning shard.
    pub fn reload(&self, name: &str) -> Result<Arc<Snapshot>, ReloadError> {
        self.engine_for(name).reload(name)
    }

    /// Routes a mode-switching reload to the owning shard.
    pub fn reload_with_mode(
        &self,
        name: &str,
        mode: Option<molq_core::prelude::BuildMode>,
    ) -> Result<Arc<Snapshot>, ReloadError> {
        self.engine_for(name).reload_with_mode(name, mode)
    }

    /// The snapshot for `name`, from its owning shard.
    pub fn get(&self, name: &str) -> Option<Arc<Snapshot>> {
        self.engine_for(name).get(name)
    }

    /// All dataset names across all shards, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.shards.iter().flat_map(|s| s.names()).collect();
        names.sort();
        names
    }

    /// Breaker reports across all shards, in shard order.
    pub fn breaker_reports(&self) -> Vec<BreakerReport> {
        self.shards
            .iter()
            .flat_map(|s| s.breaker_reports())
            .collect()
    }

    /// In-flight background builds across all shards.
    pub fn builds_in_flight(&self) -> Vec<(String, u64)> {
        self.shards
            .iter()
            .flat_map(|s| s.builds_in_flight())
            .collect()
    }

    /// Live-update statistics aggregated across shards (sums; `last_patch`
    /// is the max across shards, a recent-patch proxy).
    pub fn update_stats(&self) -> UpdateStatsReport {
        let mut total = UpdateStatsReport::default();
        for report in self.shards.iter().map(|s| s.update_stats()) {
            total.applied += report.applied;
            total.rejected += report.rejected;
            total.replayed += report.replayed;
            total.compactions += report.compactions;
            total.full_rebuilds += report.full_rebuilds;
            total.patch_micros_total += report.patch_micros_total;
            total.cells_reclipped += report.cells_reclipped;
            total.last_patch_micros = total.last_patch_micros.max(report.last_patch_micros);
        }
        total
    }

    /// Arena counters aggregated across shards (segment copies sum; the
    /// restore-split and last-patch gauges take the max, a recent-event
    /// proxy matching `last_patch_micros`).
    pub fn arena_stats(&self) -> ArenaStatsReport {
        let mut total = ArenaStatsReport::default();
        for report in self.shards.iter().map(|s| s.arena_stats()) {
            total.segments_copied_total += report.segments_copied_total;
            total.last_segments_copied =
                total.last_segments_copied.max(report.last_segments_copied);
            total.last_restore_copy_micros = total
                .last_restore_copy_micros
                .max(report.last_restore_copy_micros);
            total.last_restore_validate_micros = total
                .last_restore_validate_micros
                .max(report.last_restore_validate_micros);
        }
        total
    }

    /// Durability counters aggregated across shards (sums; `degraded` is
    /// true when any shard is degraded, `last_error` is the first shard's).
    pub fn durability(&self) -> DurabilityReport {
        let mut total = DurabilityReport::default();
        for report in self.shards.iter().map(|s| s.durability()) {
            total.append_failures += report.append_failures;
            total.save_retries += report.save_retries;
            total.save_failures += report.save_failures;
            total.salvages += report.salvages;
            total.torn_tails += report.torn_tails;
            total.journals_set_aside += report.journals_set_aside;
            total.tmp_swept += report.tmp_swept;
            total.degraded |= report.degraded;
            if total.last_error.is_none() {
                total.last_error = report.last_error;
            }
        }
        total
    }

    /// Applies one execution configuration to every shard.
    pub fn set_exec_config(&self, exec: ExecConfig) {
        for shard in &self.shards {
            shard.set_exec_config(exec);
        }
    }
}

/// FNV-1a over the dataset name and the shard index: cheap, stable across
/// platforms (explicit little-endian index bytes), shared with the store's
/// fingerprinting via `molq_store::hash`.
fn rendezvous_score(name: &str, shard: usize) -> u64 {
    let mut h = molq_store::Fnv64::new();
    h.update(name.as_bytes());
    h.update(&(shard as u64).to_le_bytes());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_routes_everything_to_shard_zero() {
        let sharded = ShardedEngine::new(1);
        for name in ["default", "alpha", "beta", "a-very-long-dataset-name"] {
            assert_eq!(sharded.shard_of(name), 0);
        }
    }

    #[test]
    fn routing_is_deterministic_across_instances() {
        let a = ShardedEngine::new(4);
        let b = ShardedEngine::new(4);
        for i in 0..50 {
            let name = format!("dataset-{i}");
            assert_eq!(a.shard_of(&name), b.shard_of(&name), "{name}");
        }
    }

    #[test]
    fn names_spread_across_shards() {
        let sharded = ShardedEngine::new(4);
        let mut used = [false; 4];
        for i in 0..64 {
            used[sharded.shard_of(&format!("dataset-{i}"))] = true;
        }
        assert!(
            used.iter().all(|u| *u),
            "64 names should touch all 4 shards: {used:?}"
        );
    }

    #[test]
    fn growing_the_shard_count_moves_few_names() {
        let four = ShardedEngine::new(4);
        let five = ShardedEngine::new(5);
        let names: Vec<String> = (0..200).map(|i| format!("dataset-{i}")).collect();
        let moved = names
            .iter()
            .filter(|n| {
                let old = four.shard_of(n);
                let new = five.shard_of(n);
                // Rendezvous: a name either stays put or moves to the NEW
                // shard — it never shuffles between existing shards.
                if old != new {
                    assert_eq!(new, 4, "{n} moved to an old shard");
                }
                old != new
            })
            .count();
        // Expected movement is ~1/5 of names; allow generous slack.
        assert!(
            moved > 10 && moved < 100,
            "moved {moved} of {} names",
            names.len()
        );
    }

    #[test]
    fn loaded_datasets_are_visible_through_routing() {
        let sharded = ShardedEngine::new(3);
        // Synthesize via the sole API that doesn't need CSV files.
        use crate::engine::DatasetSpec;
        use molq_core::prelude::*;
        use molq_geom::{Mbr, Point};
        for name in ["one", "two", "three"] {
            let spec = DatasetSpec {
                bounds: Some(Mbr::new(0.0, 0.0, 10.0, 10.0)),
                ..DatasetSpec::new(name, Vec::new())
            };
            let sets = vec![
                ObjectSet::uniform("a", 1.0, vec![Point::new(1.0, 1.0), Point::new(9.0, 9.0)]),
                ObjectSet::uniform("b", 1.0, vec![Point::new(2.0, 7.0), Point::new(8.0, 3.0)]),
            ];
            sharded.shards()[sharded.shard_of(name)]
                .load_from_sets(spec, sets)
                .unwrap();
        }
        assert_eq!(sharded.names(), vec!["one", "three", "two"]);
        for name in ["one", "two", "three"] {
            assert!(sharded.get(name).is_some(), "{name} should resolve");
        }
        // A name on the wrong shard is invisible through routed get: load
        // through the router, read through the router.
        assert!(sharded.get("missing").is_none());
    }
}
