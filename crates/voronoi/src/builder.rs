//! The mode-aware per-layer diagram builder seam.
//!
//! Historically the MOVD pipeline hard-wired exact construction: ordinary
//! layers went through [`OrdinaryVoronoi`] cell clipping, weighted layers
//! through [`WeightedVoronoi`] superset MBRs. [`DiagramBuilder`] turns those
//! into *one strategy* and adds the quadtree-refinement approximate builder
//! ([`crate::approx`]) as the other, so callers pick a mode once and thread
//! it through instead of branching at every layer:
//!
//! * [`BuildStrategy::Exact`] reproduces the historical output **bit for
//!   bit** — it calls the same constructors with the same arguments.
//! * [`BuildStrategy::Approx`] returns linear-size per-site rectangle
//!   unions whose dominant site is certified within `(1+ε)`.

use crate::approx::{ApproxConfig, ApproxDiagram, ApproxStats};
use crate::ordinary::{OrdinaryVoronoi, VoronoiError};
use crate::weighted::{WeightScheme, WeightedSite, WeightedVoronoi};
use molq_geom::{ConvexPolygon, Mbr, Point};

/// How a layer's regions are constructed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BuildStrategy {
    /// Exact clipping (ordinary layers) / analytic superset MBRs (weighted
    /// layers) — the historical pipeline.
    Exact,
    /// Quadtree refinement until every leaf's dominant site is certified
    /// within a `(1+ε)` weighted-distance factor.
    Approx {
        /// The approximation parameter ε > 0.
        epsilon: f64,
    },
}

/// Regions of one layer, in the representation its strategy produces.
#[derive(Debug, Clone)]
pub enum LayerRegions {
    /// Exact convex cells, one per site (uniform object weights).
    Cells(Vec<ConvexPolygon>),
    /// Sound superset MBRs of the weighted dominance regions, one per site.
    Mbrs(Vec<Mbr>),
    /// Approximate per-site rectangle unions: `tiles[i]` is the list of
    /// quadtree leaves `(1+ε)`-dominated by site `i`; all rectangles
    /// together tile the bounds.
    Tiles {
        /// Per-site leaf rectangles.
        tiles: Vec<Vec<Mbr>>,
        /// Refinement counters.
        stats: ApproxStats,
    },
}

/// Builds one layer's regions under a fixed strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiagramBuilder {
    strategy: BuildStrategy,
}

impl DiagramBuilder {
    /// The exact strategy (bit-identical to the pre-seam pipeline).
    pub fn exact() -> Self {
        DiagramBuilder {
            strategy: BuildStrategy::Exact,
        }
    }

    /// The `(1+ε)`-approximate strategy.
    pub fn approx(epsilon: f64) -> Self {
        DiagramBuilder {
            strategy: BuildStrategy::Approx { epsilon },
        }
    }

    /// The configured strategy.
    pub fn strategy(&self) -> BuildStrategy {
        self.strategy
    }

    /// Builds the regions of a layer whose object weights are all equal
    /// (an ordinary Voronoi layer). `threads` is used by the exact clipper's
    /// parallel cell construction only.
    pub fn ordinary_layer(
        &self,
        sites: &[Point],
        bounds: Mbr,
        threads: usize,
    ) -> Result<LayerRegions, VoronoiError> {
        match self.strategy {
            BuildStrategy::Exact => {
                let vd = OrdinaryVoronoi::build_parallel(sites, bounds, threads)?;
                Ok(LayerRegions::Cells(
                    (0..sites.len()).map(|i| vd.cell(i).clone()).collect(),
                ))
            }
            BuildStrategy::Approx { epsilon } => {
                let weighted: Vec<WeightedSite> = sites
                    .iter()
                    .map(|&loc| WeightedSite::new(loc, 1.0))
                    .collect();
                Ok(self.approx_layer(&weighted, WeightScheme::Multiplicative, bounds, epsilon))
            }
        }
    }

    /// Builds the regions of a weighted layer.
    pub fn weighted_layer(
        &self,
        sites: &[WeightedSite],
        scheme: WeightScheme,
        bounds: Mbr,
    ) -> LayerRegions {
        match self.strategy {
            BuildStrategy::Exact => {
                let vd = WeightedVoronoi::build(sites, scheme, bounds);
                LayerRegions::Mbrs((0..sites.len()).map(|i| vd.region_mbr(i)).collect())
            }
            BuildStrategy::Approx { epsilon } => self.approx_layer(sites, scheme, bounds, epsilon),
        }
    }

    fn approx_layer(
        &self,
        sites: &[WeightedSite],
        scheme: WeightScheme,
        bounds: Mbr,
        epsilon: f64,
    ) -> LayerRegions {
        let d = ApproxDiagram::build(sites, scheme, bounds, &ApproxConfig::new(epsilon));
        let stats = *d.stats();
        LayerRegions::Tiles {
            tiles: (0..d.len()).map(|i| d.site_rects(i).to_vec()).collect(),
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sites() -> Vec<Point> {
        vec![
            Point::new(2.0, 2.0),
            Point::new(8.0, 3.0),
            Point::new(5.0, 8.0),
        ]
    }

    #[test]
    fn exact_ordinary_matches_direct_construction() {
        let b = Mbr::new(0.0, 0.0, 10.0, 10.0);
        let via_seam = DiagramBuilder::exact()
            .ordinary_layer(&sites(), b, 1)
            .unwrap();
        let direct = OrdinaryVoronoi::build_parallel(&sites(), b, 1).unwrap();
        let LayerRegions::Cells(cells) = via_seam else {
            panic!("exact ordinary must produce cells");
        };
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.vertices(), direct.cell(i).vertices());
        }
    }

    #[test]
    fn exact_weighted_matches_direct_construction() {
        let b = Mbr::new(0.0, 0.0, 10.0, 10.0);
        let ws: Vec<WeightedSite> = sites()
            .into_iter()
            .zip([1.0, 2.0, 3.0])
            .map(|(p, w)| WeightedSite::new(p, w))
            .collect();
        let via_seam = DiagramBuilder::exact().weighted_layer(&ws, WeightScheme::Multiplicative, b);
        let direct = WeightedVoronoi::build(&ws, WeightScheme::Multiplicative, b);
        let LayerRegions::Mbrs(mbrs) = via_seam else {
            panic!("exact weighted must produce MBRs");
        };
        for (i, m) in mbrs.iter().enumerate() {
            assert_eq!(*m, direct.region_mbr(i));
        }
    }

    #[test]
    fn approx_layer_tiles_the_bounds() {
        let b = Mbr::new(0.0, 0.0, 10.0, 10.0);
        let out = DiagramBuilder::approx(0.2)
            .ordinary_layer(&sites(), b, 1)
            .unwrap();
        let LayerRegions::Tiles { tiles, stats } = out else {
            panic!("approx must produce tiles");
        };
        assert!(stats.fully_certified());
        let area: f64 = tiles.iter().flatten().map(Mbr::area).sum();
        assert!((area - b.area()).abs() < 1e-9 * b.area());
    }
}
