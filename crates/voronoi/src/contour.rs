//! Raster-contour extraction of weighted dominance regions.
//!
//! Weighted Voronoi regions are bounded by circular/hyperbolic arcs the paper
//! declines to maintain exactly. For the *general* RRB path we approximate
//! each region by polygons traced from a dominance raster:
//!
//! 1. label every grid cell with its dominator,
//! 2. **dilate** each site's mask by one cell — the traced polygons then
//!    *over*-cover the true region, which keeps the MOLQ pipeline exact
//!    (false-positive OVRs cost time, never correctness; the same argument
//!    as MBRB's),
//! 3. trace the rectilinear boundary loops of the mask and simplify
//!    collinear runs.
//!
//! A region may be disconnected (multiplicative weighting produces bubbles),
//! so each site yields a *set* of polygons. Interior holes are dropped —
//! another over-cover, same justification.

use crate::weighted::WeightedVoronoi;
use molq_geom::{Mbr, Point, Polygon};
use std::collections::HashMap;

/// Traces approximate region polygons for every site of a weighted diagram
/// on a `res × res` dominance raster. Returns one `Vec<Polygon>` per site
/// (possibly empty for sites dominating no raster cell).
pub fn region_polygons(vd: &WeightedVoronoi, res: usize) -> Vec<Vec<Polygon>> {
    assert!(res >= 2, "need at least a 2x2 raster");
    let labels = vd.rasterize(res);
    let n = vd.len();
    let mut out = Vec::with_capacity(n);
    for site in 0..n {
        // Dilated mask: cell owned by `site`, or any 4-neighbour owned.
        let owned = |r: isize, c: isize| -> bool {
            if r < 0 || c < 0 || r >= res as isize || c >= res as isize {
                return false;
            }
            labels[r as usize * res + c as usize] == site
        };
        let mut mask = vec![false; res * res];
        let mut any = false;
        for r in 0..res as isize {
            for c in 0..res as isize {
                if owned(r, c)
                    || owned(r - 1, c)
                    || owned(r + 1, c)
                    || owned(r, c - 1)
                    || owned(r, c + 1)
                {
                    mask[r as usize * res + c as usize] = true;
                    any = true;
                }
            }
        }
        if !any {
            out.push(Vec::new());
            continue;
        }
        out.push(trace_mask(&mask, res, vd.bounds()));
    }
    out
}

/// Traces the outer boundary loops of a binary cell mask as CCW polygons in
/// world coordinates (holes dropped).
fn trace_mask(mask: &[bool], res: usize, bounds: &Mbr) -> Vec<Polygon> {
    let at = |r: isize, c: isize| -> bool {
        r >= 0
            && c >= 0
            && r < res as isize
            && c < res as isize
            && mask[r as usize * res + c as usize]
    };

    // Directed boundary edges on grid vertices (col, row) with the region on
    // the left; per owned cell, emit edges adjacent to non-owned space, CCW.
    // Key: start vertex -> list of end vertices.
    let mut edges: HashMap<(u32, u32), Vec<(u32, u32)>> = HashMap::new();
    let mut push = |a: (u32, u32), b: (u32, u32)| edges.entry(a).or_default().push(b);
    for r in 0..res as isize {
        for c in 0..res as isize {
            if !at(r, c) {
                continue;
            }
            let (cu, ru) = (c as u32, r as u32);
            if !at(r - 1, c) {
                push((cu, ru), (cu + 1, ru)); // bottom, +x
            }
            if !at(r, c + 1) {
                push((cu + 1, ru), (cu + 1, ru + 1)); // right, +y
            }
            if !at(r + 1, c) {
                push((cu + 1, ru + 1), (cu, ru + 1)); // top, -x
            }
            if !at(r, c - 1) {
                push((cu, ru + 1), (cu, ru)); // left, -y
            }
        }
    }

    // Stitch directed edges into loops. At saddle vertices two edges start at
    // the same vertex; preferring the left turn keeps loops simple.
    let mut loops: Vec<Vec<(u32, u32)>> = Vec::new();
    let mut work: HashMap<(u32, u32), Vec<(u32, u32)>> = edges;
    let starts: Vec<(u32, u32)> = work.keys().copied().collect();
    for start in starts {
        #[allow(clippy::while_let_loop)] // the borrow must end before the body
        loop {
            let Some(ends) = work.get_mut(&start) else {
                break;
            };
            if ends.is_empty() {
                work.remove(&start);
                break;
            }
            let first_end = ends.pop().unwrap();
            let mut ring = vec![start, first_end];
            let mut prev = start;
            let mut cur = first_end;
            let mut steps = 0usize;
            let max_steps = 4 * res * res + 8;
            while cur != start && steps < max_steps {
                steps += 1;
                let Some(nexts) = work.get_mut(&cur) else {
                    ring.clear();
                    break;
                };
                if nexts.is_empty() {
                    ring.clear();
                    break;
                }
                // Left-turn preference at saddles.
                let dir_in = (cur.0 as i64 - prev.0 as i64, cur.1 as i64 - prev.1 as i64);
                let pick = if nexts.len() == 1 {
                    0
                } else {
                    // cross(dir_in, dir_out) > 0 means left turn.
                    nexts
                        .iter()
                        .enumerate()
                        .max_by_key(|(_, &nv)| {
                            let d = (nv.0 as i64 - cur.0 as i64, nv.1 as i64 - cur.1 as i64);
                            dir_in.0 * d.1 - dir_in.1 * d.0
                        })
                        .map(|(i, _)| i)
                        .unwrap()
                };
                let next = nexts.swap_remove(pick);
                if nexts.is_empty() {
                    work.remove(&cur);
                }
                ring.push(next);
                prev = cur;
                cur = next;
            }
            if !ring.is_empty() && cur == start {
                ring.pop(); // drop duplicated closing vertex
                loops.push(ring);
            }
        }
    }

    // Convert to world coordinates, simplify collinear runs, keep CCW outer
    // loops only.
    let (dx, dy) = (bounds.width() / res as f64, bounds.height() / res as f64);
    loops
        .into_iter()
        .filter_map(|ring| {
            let pts: Vec<Point> = simplify_rectilinear(&ring)
                .into_iter()
                .map(|(c, r)| {
                    Point::new(bounds.min_x + c as f64 * dx, bounds.min_y + r as f64 * dy)
                })
                .collect();
            let poly = Polygon::new(pts);
            (poly.len() >= 3 && poly.signed_area() > 0.0).then_some(poly)
        })
        .collect()
}

/// Removes intermediate vertices on straight runs of a rectilinear ring.
fn simplify_rectilinear(ring: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let n = ring.len();
    if n < 3 {
        return ring.to_vec();
    }
    let mut out = Vec::with_capacity(n / 2);
    for i in 0..n {
        let prev = ring[(i + n - 1) % n];
        let cur = ring[i];
        let next = ring[(i + 1) % n];
        let d1 = (cur.0 as i64 - prev.0 as i64, cur.1 as i64 - prev.1 as i64);
        let d2 = (next.0 as i64 - cur.0 as i64, next.1 as i64 - cur.1 as i64);
        if d1.0 * d2.1 - d1.1 * d2.0 != 0 {
            out.push(cur);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weighted::{WeightScheme, WeightedSite};

    fn bounds() -> Mbr {
        Mbr::new(0.0, 0.0, 10.0, 10.0)
    }

    #[test]
    fn two_equal_sites_split_into_halves() {
        let vd = WeightedVoronoi::build(
            &[
                WeightedSite::new(Point::new(2.5, 5.0), 1.0),
                WeightedSite::new(Point::new(7.5, 5.0), 1.0),
            ],
            WeightScheme::Multiplicative,
            bounds(),
        );
        let regions = region_polygons(&vd, 32);
        assert_eq!(regions.len(), 2);
        for (i, polys) in regions.iter().enumerate() {
            assert_eq!(polys.len(), 1, "site {i}");
            let area = polys[0].area();
            // Half the domain plus the one-cell dilation band.
            assert!(area > 45.0 && area < 62.0, "site {i}: area {area}");
            assert!(polys[0].contains(vd.sites()[i].loc));
        }
    }

    #[test]
    fn regions_cover_their_raster_cells() {
        // Over-cover guarantee: every cell center dominated by a site must be
        // inside one of its traced polygons.
        let vd = WeightedVoronoi::build(
            &[
                WeightedSite::new(Point::new(2.0, 2.0), 1.0),
                WeightedSite::new(Point::new(7.0, 6.0), 2.5),
                WeightedSite::new(Point::new(5.0, 8.0), 1.5),
            ],
            WeightScheme::Multiplicative,
            bounds(),
        );
        let res = 24;
        let regions = region_polygons(&vd, res);
        let labels = vd.rasterize(res);
        let (dx, dy) = (10.0 / res as f64, 10.0 / res as f64);
        for r in 0..res {
            for c in 0..res {
                let who = labels[r * res + c];
                let p = Point::new((c as f64 + 0.5) * dx, (r as f64 + 0.5) * dy);
                assert!(
                    regions[who].iter().any(|poly| poly.contains(p)),
                    "cell center {p} (site {who}) not covered"
                );
            }
        }
    }

    #[test]
    fn heavy_site_gets_a_bubble() {
        // A much heavier (less attractive) site keeps only a small island.
        let vd = WeightedVoronoi::build(
            &[
                WeightedSite::new(Point::new(3.0, 5.0), 1.0),
                WeightedSite::new(Point::new(8.0, 5.0), 4.0),
            ],
            WeightScheme::Multiplicative,
            bounds(),
        );
        let regions = region_polygons(&vd, 48);
        let light: f64 = regions[0].iter().map(|p| p.area()).sum();
        let heavy: f64 = regions[1].iter().map(|p| p.area()).sum();
        assert!(heavy < light, "heavy {heavy} vs light {light}");
        assert!(heavy > 0.0);
    }

    #[test]
    fn additive_regions_also_trace() {
        let vd = WeightedVoronoi::build(
            &[
                WeightedSite::new(Point::new(2.0, 5.0), 0.5),
                WeightedSite::new(Point::new(8.0, 5.0), 3.0),
            ],
            WeightScheme::Additive,
            bounds(),
        );
        let regions = region_polygons(&vd, 32);
        assert!(regions.iter().all(|r| !r.is_empty()));
    }
}
