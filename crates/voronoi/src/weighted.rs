//! Weighted Voronoi diagrams (multiplicative and additive).
//!
//! The paper's query model attaches an object weight `w^o` to every POI and
//! lets the per-type weight function `ς^o` shape the diagram: a
//! multiplicative function yields a multiplicatively weighted Voronoi diagram
//! (Apollonius-circle boundaries), an additive one a hyperbolic-boundary
//! diagram (Fig 5). Exact region polygons for these diagrams are expensive to
//! maintain — the motivation for the MBRB solution — so this module provides
//! what MBRB needs:
//!
//! * exact *dominance predicates* (`dominator`, `weighted_dist`),
//! * sound superset **MBRs** of each dominance region (analytic Apollonius
//!   disk bounds intersected with the search rectangle, optionally tightened
//!   by raster scanning — the raster tightening is disabled by default since
//!   it is only probabilistically sound),
//! * raster sampling of region membership for visualisation and tests.

use molq_geom::circle::DominanceConstraint;
use molq_geom::{Mbr, Point};

/// A weighted site: location plus object weight `w^o`.
///
/// Following the paper's convention, *smaller* weights are more attractive
/// (weighted distance is `ς(d, w)`, monotone in both).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedSite {
    /// Site location.
    pub loc: Point,
    /// Object weight `w^o` (strictly positive).
    pub weight: f64,
}

impl WeightedSite {
    /// Creates a weighted site.
    pub fn new(loc: Point, weight: f64) -> Self {
        assert!(weight > 0.0, "object weight must be positive");
        WeightedSite { loc, weight }
    }
}

/// The object-weight function family defining the diagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightScheme {
    /// `ς(d, w) = d · w` — multiplicatively weighted Voronoi diagram.
    Multiplicative,
    /// `ς(d, w) = d + w` — additively weighted Voronoi diagram.
    Additive,
}

impl WeightScheme {
    /// The weighted distance from `l` to `site` under this scheme.
    #[inline]
    pub fn weighted_dist(&self, l: Point, site: &WeightedSite) -> f64 {
        match self {
            WeightScheme::Multiplicative => l.dist(site.loc) * site.weight,
            WeightScheme::Additive => l.dist(site.loc) + site.weight,
        }
    }
}

/// A weighted Voronoi diagram over a rectangular search space.
#[derive(Debug, Clone)]
pub struct WeightedVoronoi {
    sites: Vec<WeightedSite>,
    scheme: WeightScheme,
    bounds: Mbr,
    mbrs: Vec<Mbr>,
}

impl WeightedVoronoi {
    /// Builds the diagram. `sites` must be non-empty with distinct locations;
    /// `bounds` non-empty.
    pub fn build(sites: &[WeightedSite], scheme: WeightScheme, bounds: Mbr) -> Self {
        assert!(!sites.is_empty(), "need at least one site");
        assert!(!bounds.is_empty(), "bounds must be non-empty");
        let mbrs = match scheme {
            WeightScheme::Multiplicative => Self::multiplicative_mbrs(sites, &bounds),
            // Additive dominance regions are hyperbola-bounded; we keep the
            // sound-but-loose bounds rectangle per region.
            WeightScheme::Additive => vec![bounds; sites.len()],
        };
        WeightedVoronoi {
            sites: sites.to_vec(),
            scheme,
            bounds,
            mbrs,
        }
    }

    /// Analytic superset MBRs from pairwise Apollonius disk constraints:
    /// `Dom(p_i) ⊆ ∩_{w_i > w_j} Disk_{ij}`, each disk bounding where the
    /// *less* attractive site `i` can still beat `j`.
    fn multiplicative_mbrs(sites: &[WeightedSite], bounds: &Mbr) -> Vec<Mbr> {
        let n = sites.len();
        let mut mbrs = vec![*bounds; n];
        for i in 0..n {
            let mut acc = *bounds;
            for j in 0..n {
                if i == j || sites[i].loc == sites[j].loc {
                    continue;
                }
                if sites[i].weight > sites[j].weight {
                    let c = DominanceConstraint::multiplicative(
                        sites[i].loc,
                        sites[i].weight,
                        sites[j].loc,
                        sites[j].weight,
                    );
                    acc = acc.intersection(&c.mbr_within(bounds));
                    if acc.is_empty() {
                        break;
                    }
                }
            }
            mbrs[i] = acc;
        }
        mbrs
    }

    /// The sites.
    pub fn sites(&self) -> &[WeightedSite] {
        &self.sites
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// `true` when there are no sites (construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The weighting scheme.
    pub fn scheme(&self) -> WeightScheme {
        self.scheme
    }

    /// The search-space rectangle.
    pub fn bounds(&self) -> &Mbr {
        &self.bounds
    }

    /// Weighted distance from `l` to site `i`.
    #[inline]
    pub fn weighted_dist(&self, l: Point, i: usize) -> f64 {
        self.scheme.weighted_dist(l, &self.sites[i])
    }

    /// Index of the site with minimum weighted distance to `l` (ties break
    /// to the lower index). Exact — `O(n)` scan.
    pub fn dominator(&self, l: Point) -> usize {
        let mut best = 0usize;
        let mut best_d = self.weighted_dist(l, 0);
        for i in 1..self.sites.len() {
            let d = self.weighted_dist(l, i);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    /// A sound superset MBR of site `i`'s dominance region within the search
    /// space. May be [`Mbr::EMPTY`] when the region is provably empty.
    pub fn region_mbr(&self, i: usize) -> Mbr {
        self.mbrs[i]
    }

    /// Rasterises dominance membership on an `res × res` grid: entry `k` is
    /// the dominator of the k-th cell center (row-major from the minimum
    /// corner). For visualisation and tests.
    pub fn rasterize(&self, res: usize) -> Vec<usize> {
        assert!(res > 0);
        let mut out = Vec::with_capacity(res * res);
        let dx = self.bounds.width() / res as f64;
        let dy = self.bounds.height() / res as f64;
        for r in 0..res {
            for c in 0..res {
                let l = Point::new(
                    self.bounds.min_x + (c as f64 + 0.5) * dx,
                    self.bounds.min_y + (r as f64 + 0.5) * dy,
                );
                out.push(self.dominator(l));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_sites() -> Vec<WeightedSite> {
        vec![
            WeightedSite::new(Point::new(2.0, 5.0), 1.0),
            WeightedSite::new(Point::new(8.0, 5.0), 2.0),
        ]
    }

    #[test]
    fn multiplicative_dominator_matches_direct_computation() {
        let sites = two_sites();
        let vd = WeightedVoronoi::build(
            &sites,
            WeightScheme::Multiplicative,
            Mbr::new(0.0, 0.0, 10.0, 10.0),
        );
        for i in 0..20 {
            for j in 0..20 {
                let l = Point::new(i as f64 * 0.5, j as f64 * 0.5);
                let want = if l.dist(sites[0].loc) * 1.0 <= l.dist(sites[1].loc) * 2.0 {
                    0
                } else {
                    1
                };
                assert_eq!(vd.dominator(l), want, "at {l}");
            }
        }
    }

    #[test]
    fn additive_dominator() {
        let sites = vec![
            WeightedSite::new(Point::new(0.0, 0.0), 0.5),
            WeightedSite::new(Point::new(4.0, 0.0), 2.0),
        ];
        let vd = WeightedVoronoi::build(
            &sites,
            WeightScheme::Additive,
            Mbr::new(-5.0, -5.0, 9.0, 5.0),
        );
        // Bisector: d0 + 0.5 = d1 + 2 → d0 = d1 + 1.5; at x: x + 0.5 = (4-x) + 2 → x = 2.75.
        assert_eq!(vd.dominator(Point::new(2.5, 0.0)), 0);
        assert_eq!(vd.dominator(Point::new(3.0, 0.0)), 1);
    }

    #[test]
    fn heavier_site_region_mbr_is_bounded() {
        let sites = two_sites();
        let bounds = Mbr::new(0.0, 0.0, 10.0, 10.0);
        let vd = WeightedVoronoi::build(&sites, WeightScheme::Multiplicative, bounds);
        // Site 1 (weight 2) is confined by an Apollonius disk; its MBR must
        // be strictly smaller than the bounds.
        let m1 = vd.region_mbr(1);
        assert!(m1.area() < bounds.area());
        // Site 0 (lightest) is unbounded → full rectangle.
        assert_eq!(vd.region_mbr(0), bounds);
    }

    #[test]
    fn region_mbrs_are_sound_supersets() {
        // Every rasterised point dominated by site i must fall in its MBR.
        let sites = vec![
            WeightedSite::new(Point::new(1.0, 1.0), 1.0),
            WeightedSite::new(Point::new(8.0, 2.0), 3.0),
            WeightedSite::new(Point::new(5.0, 8.0), 2.0),
            WeightedSite::new(Point::new(3.0, 6.0), 5.0),
        ];
        let bounds = Mbr::new(0.0, 0.0, 10.0, 10.0);
        let vd = WeightedVoronoi::build(&sites, WeightScheme::Multiplicative, bounds);
        let res = 64;
        let raster = vd.rasterize(res);
        let dx = bounds.width() / res as f64;
        let dy = bounds.height() / res as f64;
        for r in 0..res {
            for c in 0..res {
                let who = raster[r * res + c];
                let l = Point::new(
                    bounds.min_x + (c as f64 + 0.5) * dx,
                    bounds.min_y + (r as f64 + 0.5) * dy,
                );
                assert!(
                    vd.region_mbr(who).contains(l),
                    "site {who} dominates {l} outside its MBR {:?}",
                    vd.region_mbr(who)
                );
            }
        }
    }

    #[test]
    fn equal_weights_reduce_to_ordinary() {
        let sites = vec![
            WeightedSite::new(Point::new(2.0, 2.0), 1.0),
            WeightedSite::new(Point::new(8.0, 8.0), 1.0),
        ];
        let vd = WeightedVoronoi::build(
            &sites,
            WeightScheme::Multiplicative,
            Mbr::new(0.0, 0.0, 10.0, 10.0),
        );
        assert_eq!(vd.dominator(Point::new(1.0, 1.0)), 0);
        assert_eq!(vd.dominator(Point::new(9.0, 9.0)), 1);
        assert_eq!(vd.dominator(Point::new(4.9, 4.9)), 0);
        assert_eq!(vd.dominator(Point::new(5.1, 5.1)), 1);
    }

    #[test]
    fn rasterize_shape() {
        let sites = two_sites();
        let vd = WeightedVoronoi::build(
            &sites,
            WeightScheme::Multiplicative,
            Mbr::new(0.0, 0.0, 10.0, 10.0),
        );
        let raster = vd.rasterize(16);
        assert_eq!(raster.len(), 256);
        assert!(raster.iter().all(|&d| d < 2));
        // Both sites must own some territory.
        assert!(raster.contains(&0) && raster.contains(&1));
    }
}
