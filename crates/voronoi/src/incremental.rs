//! Incrementally maintained ordinary Voronoi diagrams, bit-identical to a
//! from-scratch [`OrdinaryVoronoi`] build after every update.
//!
//! [`OrdinaryVoronoi::cell_of_site`] computes each cell as a pure function
//! of the site set (through kd-tree nearest-neighbour queries), so any cell
//! may be recomputed in isolation. The trick is knowing which cells an
//! insert or remove can possibly change *without* recomputing all of them.
//! [`IncrementalVoronoi`] records, per cell, the construction's **query
//! trace**:
//!
//! * an *influence disk* per query — the query answer is provably unchanged
//!   by any new site strictly outside the disk;
//! * the *answer ids* — the sites the queries returned; removing any other
//!   site leaves every answer (and the certify loop's control flow) intact.
//!
//! By induction over the construction, a cell whose trace is untouched by
//! an update replays the exact same clip sequence and reproduces the exact
//! same polygon bits — so the old polygon is reused as-is. Everything bits
//! could depend on but the trace cannot vouch for (exact distance ties,
//! whose winner is decided by kd-tree shape rather than geometry; seed
//! lists covering the whole site set) is recorded as an infinite disk,
//! forcing recomputation of that cell on every update.
//!
//! Updates therefore cost one kd-tree rebuild plus a handful of cell
//! recomputations — typically well under a millisecond against the tens of
//! milliseconds of a full rebuild — while remaining *provably* equal, bit
//! for bit, to `OrdinaryVoronoi::build` over the updated site list.

use crate::ordinary::{OrdinaryVoronoi, TraceSink, VoronoiError};
use molq_geom::{ConvexPolygon, Mbr, Point};
use molq_index::KdTree;

/// The recorded query trace of one cell's construction.
#[derive(Debug, Clone, Default)]
struct CellTrace {
    /// `(center, radius_sq)`: a new site at `q` can only perturb this cell
    /// if `d²(q, center) <= radius_sq` for some disk. `INFINITY` marks the
    /// cell as unconditionally suspect.
    disks: Vec<(Point, f64)>,
    /// Site ids some query answered with: removing any of them invalidates
    /// the recorded construction.
    answers: Vec<u32>,
}

impl TraceSink for CellTrace {
    fn disk(&mut self, center: Point, radius_sq: f64) {
        self.disks.push((center, radius_sq));
    }

    fn answer(&mut self, id: usize) {
        let id = id as u32;
        if !self.answers.contains(&id) {
            self.answers.push(id);
        }
    }
}

impl CellTrace {
    /// Could a new site at `q` change any recorded query answer?
    fn hit_by(&self, q: Point) -> bool {
        self.disks.iter().any(|&(c, r_sq)| q.dist_sq(c) <= r_sq)
    }

    /// Did any recorded query answer with site `d`?
    fn answered_by(&self, d: usize) -> bool {
        self.answers.contains(&(d as u32))
    }

    /// `true` when some recorded query hit an exact distance tie: its answer
    /// is decided by kd-tree shape, and *any* change of the site set
    /// rebuilds the tree, so the cell must be recomputed every time.
    fn tree_shape_dependent(&self) -> bool {
        self.disks.iter().any(|&(_, r_sq)| r_sq == f64::INFINITY)
    }

    /// Rewrites answer ids after site `d` was removed (later ids shift
    /// down). Only valid for traces that never answered with `d`.
    fn shift_answers_past(&mut self, d: usize) {
        for id in &mut self.answers {
            debug_assert_ne!(*id as usize, d);
            if *id as usize > d {
                *id -= 1;
            }
        }
    }
}

/// An ordinary Voronoi diagram that applies single-site inserts and removes
/// in place, maintaining cells bit-identical to a from-scratch
/// [`OrdinaryVoronoi::build`] over the current site list (see the module
/// docs for the argument).
#[derive(Debug, Clone)]
pub struct IncrementalVoronoi {
    sites: Vec<Point>,
    bounds: Mbr,
    cells: Vec<ConvexPolygon>,
    traces: Vec<CellTrace>,
    tree: KdTree,
}

impl IncrementalVoronoi {
    /// Builds the diagram with recorded traces on `threads` workers. Cell
    /// output is identical to [`OrdinaryVoronoi::build_parallel`].
    pub fn build(sites: &[Point], bounds: Mbr, threads: usize) -> Result<Self, VoronoiError> {
        assert!(threads >= 1);
        let vd = OrdinaryVoronoi::validate_inputs(sites, bounds)?;
        let n = sites.len();
        let tree = &vd.tree;
        let cell_range = |lo: usize, hi: usize| {
            let mut cells = Vec::with_capacity(hi - lo);
            let mut traces = Vec::with_capacity(hi - lo);
            for i in lo..hi {
                let mut trace = CellTrace::default();
                let (c, _) =
                    OrdinaryVoronoi::cell_of_site(tree, sites, i, sites[i], &bounds, &mut trace);
                cells.push(c);
                traces.push(trace);
            }
            (cells, traces)
        };
        let mut cells = Vec::with_capacity(n);
        let mut traces = Vec::with_capacity(n);
        if threads == 1 || n < 256 {
            let (c, t) = cell_range(0, n);
            cells = c;
            traces = t;
        } else {
            let chunk = n.div_ceil(threads);
            let results: Vec<_> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        let lo = (t * chunk).min(n);
                        let hi = ((t + 1) * chunk).min(n);
                        let cell_range = &cell_range;
                        scope.spawn(move || cell_range(lo, hi))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .collect()
            });
            for (c, t) in results {
                cells.extend(c);
                traces.extend(t);
            }
        }
        Ok(IncrementalVoronoi {
            sites: vd.sites,
            bounds,
            cells,
            traces,
            tree: vd.tree,
        })
    }

    /// The sites, in input order.
    pub fn sites(&self) -> &[Point] {
        &self.sites
    }

    /// Number of sites (= number of cells).
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// `true` when the diagram has no sites (never: construction rejects it).
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The search-space rectangle.
    pub fn bounds(&self) -> &Mbr {
        &self.bounds
    }

    /// The cell of site `i`.
    pub fn cell(&self, i: usize) -> &ConvexPolygon {
        &self.cells[i]
    }

    /// All cells, indexed by site.
    pub fn cells(&self) -> &[ConvexPolygon] {
        &self.cells
    }

    /// Appends a site (its index becomes `len()`), recomputing exactly the
    /// cells whose recorded traces the new site can touch. Rejects a site
    /// duplicating existing coordinates, like the from-scratch build.
    pub fn insert(&mut self, p: Point) -> Result<(), VoronoiError> {
        if let Some((q, j)) = self.tree.nearest(p) {
            if q.dist_sq(p) == 0.0 {
                return Err(VoronoiError::DuplicateSites(j, self.sites.len()));
            }
        }
        let suspects: Vec<usize> = (0..self.cells.len())
            .filter(|&i| self.traces[i].hit_by(p))
            .collect();
        self.sites.push(p);
        self.tree = KdTree::from_points(&self.sites);
        self.recompute(&suspects);
        let (cell, trace) = self.compute_cell(self.sites.len() - 1);
        self.cells.push(cell);
        self.traces.push(trace);
        Ok(())
    }

    /// Removes site `d` (later sites shift down by one), recomputing exactly
    /// the cells whose recorded constructions involved it.
    pub fn remove(&mut self, d: usize) -> Result<(), VoronoiError> {
        if d >= self.sites.len() {
            return Err(VoronoiError::NoSites);
        }
        if self.sites.len() == 1 {
            return Err(VoronoiError::NoSites);
        }
        let suspects: Vec<usize> = (0..self.cells.len())
            .filter(|&i| {
                i != d && (self.traces[i].answered_by(d) || self.traces[i].tree_shape_dependent())
            })
            // Post-removal numbering, in which the recompute runs.
            .map(|i| if i > d { i - 1 } else { i })
            .collect();
        self.sites.remove(d);
        self.cells.remove(d);
        self.traces.remove(d);
        for &i in &suspects {
            // About to be recomputed; dropping the stale trace now keeps the
            // shift below free of the removed id.
            self.traces[i] = CellTrace::default();
        }
        for trace in &mut self.traces {
            trace.shift_answers_past(d);
        }
        self.tree = KdTree::from_points(&self.sites);
        self.recompute(&suspects);
        Ok(())
    }

    fn compute_cell(&self, i: usize) -> (ConvexPolygon, CellTrace) {
        let mut trace = CellTrace::default();
        let (cell, _) = OrdinaryVoronoi::cell_of_site(
            &self.tree,
            &self.sites,
            i,
            self.sites[i],
            &self.bounds,
            &mut trace,
        );
        (cell, trace)
    }

    fn recompute(&mut self, suspects: &[usize]) {
        for &i in suspects {
            let (cell, trace) = self.compute_cell(i);
            self.cells[i] = cell;
            self.traces[i] = trace;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_points(n: usize, seed: u64, extent: f64) -> Vec<Point> {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as f64 / u32::MAX as f64
        };
        (0..n)
            .map(|_| Point::new(next() * extent, next() * extent))
            .collect()
    }

    fn polys_bits_eq(a: &ConvexPolygon, b: &ConvexPolygon) -> bool {
        a.vertices().len() == b.vertices().len()
            && a.vertices()
                .iter()
                .zip(b.vertices())
                .all(|(p, q)| p.x.to_bits() == q.x.to_bits() && p.y.to_bits() == q.y.to_bits())
    }

    /// Every cell must match a from-scratch build, bit for bit.
    fn assert_matches_scratch(ivd: &IncrementalVoronoi) {
        let scratch = OrdinaryVoronoi::build(ivd.sites(), *ivd.bounds()).unwrap();
        assert_eq!(ivd.len(), scratch.len());
        for i in 0..ivd.len() {
            assert!(
                polys_bits_eq(ivd.cell(i), scratch.cell(i)),
                "cell {i} diverged from the scratch build"
            );
        }
    }

    #[test]
    fn build_matches_plain_build() {
        let b = Mbr::new(0.0, 0.0, 100.0, 100.0);
        let pts = pseudo_points(300, 9, 100.0);
        let ivd = IncrementalVoronoi::build(&pts, b, 1).unwrap();
        let par = IncrementalVoronoi::build(&pts, b, 4).unwrap();
        assert_matches_scratch(&ivd);
        for i in 0..ivd.len() {
            assert!(polys_bits_eq(ivd.cell(i), par.cell(i)), "cell {i}");
        }
    }

    #[test]
    fn interleaved_updates_match_scratch() {
        let b = Mbr::new(0.0, 0.0, 100.0, 100.0);
        let pts = pseudo_points(120, 31, 100.0);
        let mut ivd = IncrementalVoronoi::build(&pts, b, 1).unwrap();
        let extra = pseudo_points(12, 77, 100.0);
        for (k, &p) in extra.iter().enumerate() {
            if k % 3 == 2 {
                ivd.remove((k * 53) % ivd.len()).unwrap();
            } else {
                ivd.insert(p).unwrap();
            }
            assert_matches_scratch(&ivd);
        }
    }

    #[test]
    fn grid_sites_with_exact_ties_stay_identical() {
        // A lattice maximizes exact distance ties — the case the infinite
        // disks exist for.
        let b = Mbr::new(0.0, 0.0, 8.0, 8.0);
        let mut pts = Vec::new();
        for i in 0..8 {
            for j in 0..8 {
                pts.push(Point::new(0.5 + i as f64, 0.5 + j as f64));
            }
        }
        let mut ivd = IncrementalVoronoi::build(&pts, b, 1).unwrap();
        assert_matches_scratch(&ivd);
        ivd.insert(Point::new(3.25, 3.75)).unwrap();
        assert_matches_scratch(&ivd);
        ivd.remove(27).unwrap();
        assert_matches_scratch(&ivd);
        ivd.remove(0).unwrap();
        assert_matches_scratch(&ivd);
    }

    #[test]
    fn duplicate_insert_is_rejected_without_corruption() {
        let b = Mbr::new(0.0, 0.0, 10.0, 10.0);
        let pts = pseudo_points(20, 3, 10.0);
        let mut ivd = IncrementalVoronoi::build(&pts, b, 1).unwrap();
        let err = ivd.insert(pts[7]).unwrap_err();
        assert_eq!(err, VoronoiError::DuplicateSites(7, 20));
        assert_eq!(ivd.len(), 20);
        assert_matches_scratch(&ivd);
    }

    #[test]
    fn shrinks_to_two_sites_and_refuses_the_last() {
        let b = Mbr::new(0.0, 0.0, 10.0, 10.0);
        let pts = pseudo_points(4, 15, 10.0);
        let mut ivd = IncrementalVoronoi::build(&pts, b, 1).unwrap();
        ivd.remove(3).unwrap();
        ivd.remove(0).unwrap();
        assert_matches_scratch(&ivd);
        assert_eq!(ivd.len(), 2);
        ivd.remove(1).unwrap();
        assert_eq!(ivd.len(), 1);
        assert!(ivd.remove(0).is_err());
        assert!(ivd.remove(5).is_err());
    }
}
