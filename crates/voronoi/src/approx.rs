//! Quadtree-refinement (1+ε)-approximate weighted Voronoi diagrams.
//!
//! Exact multiplicatively weighted regions are bounded by Apollonius circles
//! and exact overlap of several diagrams is the scale ceiling of the whole
//! pipeline. Following the linear-size approximate MWVD line of work
//! (arXiv:2112.12350, arXiv:2006.14298), this module replaces exact clipping
//! with *certified refinement*: the search rectangle is subdivided until, in
//! every leaf cell, one site is provably within a `(1+ε)` factor of the best
//! weighted distance for **every** point of the cell.
//!
//! # The certificate
//!
//! For a cell `C` and site `i`, let `lb_i = ς(d_min(C, p_i), w_i)` and
//! `ub_i = ς(d_max(C, p_i), w_i)` where `d_min`/`d_max` are the least and
//! greatest Euclidean distances from any point of `C` to the site. Both
//! weight schemes (`d·w`, `d+w`) are monotone in `d`, so for every `x ∈ C`
//! the true weighted distance satisfies `lb_i ≤ ς(x, p_i) ≤ ub_i`. With
//! `a = argmin_i ub_i`, the cell is certified for `a` when
//!
//! ```text
//! ub_a ≤ (1+ε) · min_{i ≠ a} lb_i
//! ```
//!
//! because then for any `x ∈ C` and any competitor `b ≠ a`:
//! `ς(x, p_a) ≤ ub_a ≤ (1+ε)·lb_b ≤ (1+ε)·ς(x, p_b)`.
//!
//! # Near-linear work
//!
//! Each cell keeps an *active list*: site `i` is dropped once
//! `lb_i > min_j ub_j` — it can then never be the minimum anywhere in the
//! cell, and since `lb` only grows and `ub` only shrinks under subdivision,
//! never in any descendant either. Dropping it is also safe for the
//! certificate: `lb_i > min_j ub_j ≥ ub_a` already exceeds the certified
//! bound. Active lists shrink geometrically with depth, so total work is
//! near-linear in the site count.
//!
//! # Joint multi-layer refinement
//!
//! [`refine_multi`] refines **one** quadtree over several site layers at
//! once: a leaf is emitted when every layer is certified, and a layer
//! certified at an inner node stays frozen for the whole subtree. Sibling
//! leaves whose owner vectors agree are merged bottom-up, so the output is
//! a linear-size partition of the bounds into rectangles, each labelled
//! with the per-layer `(1+ε)`-dominant site — exactly the shape the MOVD
//! overlapper needs, with no plane-sweep ⊕ step at all.

use crate::weighted::{WeightScheme, WeightedSite};
use molq_geom::{Mbr, Point};

/// Tuning knobs of the refinement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxConfig {
    /// The approximation parameter ε > 0 of the `(1+ε)` certificate.
    pub epsilon: f64,
    /// Hard depth cap. A cell at this depth takes the `argmin ub` site per
    /// layer without a certificate (counted in
    /// [`ApproxStats::forced_leaves`]) — needed when two sites of one layer
    /// (co)incide so no subdivision can ever separate them.
    pub max_depth: u32,
    /// Hard cap on visited cells; past it, cells are forced like at
    /// `max_depth`. A runaway-input backstop, far above any normal run.
    pub max_cells: usize,
}

impl ApproxConfig {
    /// A config with the default depth (40) and cell caps.
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon.is_finite(),
            "epsilon must be positive and finite"
        );
        ApproxConfig {
            epsilon,
            max_depth: 40,
            max_cells: 1 << 30,
        }
    }
}

/// One input layer: the sites of one POI type and its weight scheme.
#[derive(Debug, Clone, Copy)]
pub struct ApproxLayer<'a> {
    /// The layer's weighted sites (non-empty, locations pairwise distinct
    /// for a certificate to exist at finite depth).
    pub sites: &'a [WeightedSite],
    /// The weight scheme `ς^o` of the layer.
    pub scheme: WeightScheme,
}

/// Refinement counters, reported up through `/stats` and the bench.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApproxStats {
    /// Leaves emitted (after bottom-up merging of same-owner siblings).
    pub leaves: usize,
    /// Quadtree cells visited.
    pub cells_visited: usize,
    /// Deepest cell visited.
    pub deepest: u32,
    /// Cells whose owners were forced by the depth/cell cap instead of the
    /// `(1+ε)` certificate. Zero means the whole diagram is certified.
    pub forced_leaves: usize,
}

impl ApproxStats {
    /// `true` when every leaf carries a certificate (no forced cells).
    pub fn fully_certified(&self) -> bool {
        self.forced_leaves == 0
    }
}

/// Least Euclidean distance from `p` to rectangle `r` (0 inside).
#[inline]
fn dist_min(r: &Mbr, p: Point) -> f64 {
    let dx = (r.min_x - p.x).max(p.x - r.max_x).max(0.0);
    let dy = (r.min_y - p.y).max(p.y - r.max_y).max(0.0);
    (dx * dx + dy * dy).sqrt()
}

/// Greatest Euclidean distance from `p` to rectangle `r` (attained at a
/// corner).
#[inline]
fn dist_max(r: &Mbr, p: Point) -> f64 {
    let dx = (p.x - r.min_x).max(r.max_x - p.x);
    let dy = (p.y - r.min_y).max(r.max_y - p.y);
    (dx * dx + dy * dy).sqrt()
}

#[inline]
fn bound(scheme: WeightScheme, d: f64, w: f64) -> f64 {
    match scheme {
        WeightScheme::Multiplicative => d * w,
        WeightScheme::Additive => d + w,
    }
}

/// Per-layer refinement state carried down the tree: either the layer is
/// already certified (owner frozen) or it still carries an active list.
#[derive(Clone)]
enum LayerState {
    Certified(u32),
    Open(Vec<u32>),
}

/// What a subtree reported to its parent.
enum Outcome {
    /// The whole subtree is one leaf with these per-layer owners; nothing
    /// emitted yet (the parent may merge it with its siblings).
    Uniform(Vec<u32>),
    /// The subtree already emitted its leaves.
    Emitted,
}

struct Refiner<'a, F: FnMut(Mbr, &[u32])> {
    layers: &'a [ApproxLayer<'a>],
    cfg: ApproxConfig,
    stats: ApproxStats,
    emit: F,
}

impl<'a, F: FnMut(Mbr, &[u32])> Refiner<'a, F> {
    /// Certifies / prunes every open layer over `cell`. Returns the owner
    /// vector when all layers are decided (certified, single-site, or
    /// forced by the caps).
    fn settle(&mut self, cell: &Mbr, states: &mut [LayerState], force: bool) -> Option<Vec<u32>> {
        let mut done = true;
        for (li, state) in states.iter_mut().enumerate() {
            let LayerState::Open(active) = state else {
                continue;
            };
            let layer = &self.layers[li];
            // One pass: min ub (ties to the lower index for determinism)
            // and, for the certificate, the two smallest lb values so
            // `min_{i≠a} lb_i` is available whichever site `a` holds it.
            let mut min_ub = f64::INFINITY;
            let mut best = active[0];
            let mut lb1 = f64::INFINITY; // smallest lb
            let mut lb1_site = u32::MAX;
            let mut lb2 = f64::INFINITY; // second smallest lb
            for &s in active.iter() {
                let site = &layer.sites[s as usize];
                let ub = bound(layer.scheme, dist_max(cell, site.loc), site.weight);
                if ub < min_ub {
                    min_ub = ub;
                    best = s;
                }
                let lb = bound(layer.scheme, dist_min(cell, site.loc), site.weight);
                if lb < lb1 {
                    lb2 = lb1;
                    lb1 = lb;
                    lb1_site = s;
                } else if lb < lb2 {
                    lb2 = lb;
                }
            }
            active.retain(|&s| {
                let site = &layer.sites[s as usize];
                bound(layer.scheme, dist_min(cell, site.loc), site.weight) <= min_ub
            });
            let lb_rest = if lb1_site == best { lb2 } else { lb1 };
            if active.len() == 1 {
                *state = LayerState::Certified(active[0]);
            } else if min_ub <= (1.0 + self.cfg.epsilon) * lb_rest {
                *state = LayerState::Certified(best);
            } else if force {
                self.stats.forced_leaves += 1;
                *state = LayerState::Certified(best);
            } else {
                done = false;
            }
        }
        done.then(|| {
            states
                .iter()
                .map(|s| match s {
                    LayerState::Certified(o) => *o,
                    LayerState::Open(_) => unreachable!("all layers decided"),
                })
                .collect()
        })
    }

    fn refine(&mut self, cell: Mbr, depth: u32, mut states: Vec<LayerState>) -> Outcome {
        self.stats.cells_visited += 1;
        self.stats.deepest = self.stats.deepest.max(depth);
        let force = depth >= self.cfg.max_depth || self.stats.cells_visited >= self.cfg.max_cells;
        if let Some(owners) = self.settle(&cell, &mut states, force) {
            return Outcome::Uniform(owners);
        }
        let mx = 0.5 * (cell.min_x + cell.max_x);
        let my = 0.5 * (cell.min_y + cell.max_y);
        let quads = [
            Mbr::new(cell.min_x, cell.min_y, mx, my),
            Mbr::new(mx, cell.min_y, cell.max_x, my),
            Mbr::new(cell.min_x, my, mx, cell.max_y),
            Mbr::new(mx, my, cell.max_x, cell.max_y),
        ];
        let mut results: Vec<(Mbr, Outcome)> = Vec::with_capacity(4);
        for (qi, quad) in quads.into_iter().enumerate() {
            // The last child may consume the parent's state vector.
            let child_states = if qi == 3 {
                std::mem::take(&mut states)
            } else {
                states.clone()
            };
            let outcome = self.refine(quad, depth + 1, child_states);
            results.push((quad, outcome));
        }
        // Merge: when all four children collapsed to the same owners, the
        // parent is itself one uniform leaf.
        let merged = match &results[0].1 {
            Outcome::Uniform(o) => results[1..].iter().all(|(_, r)| match r {
                Outcome::Uniform(other) => other == o,
                Outcome::Emitted => false,
            }),
            Outcome::Emitted => false,
        };
        if merged {
            let Outcome::Uniform(owners) = results.swap_remove(0).1 else {
                unreachable!("checked above");
            };
            return Outcome::Uniform(owners);
        }
        for (rect, outcome) in results {
            if let Outcome::Uniform(owners) = outcome {
                self.stats.leaves += 1;
                (self.emit)(rect, &owners);
            }
        }
        Outcome::Emitted
    }
}

/// Jointly refines one quadtree over all `layers` until every layer's
/// dominant site is certified within `(1+ε)` in every leaf, calling
/// `emit(rect, owners)` per merged leaf (`owners[l]` is the certified site
/// index of layer `l`). The emitted rectangles tile `bounds` exactly (they
/// share boundaries but not interiors) in a deterministic order.
pub fn refine_multi(
    layers: &[ApproxLayer],
    bounds: Mbr,
    cfg: &ApproxConfig,
    mut emit: impl FnMut(Mbr, &[u32]),
) -> ApproxStats {
    assert!(!layers.is_empty(), "need at least one layer");
    assert!(
        !bounds.is_empty() && bounds.area() > 0.0,
        "bounds must have positive area"
    );
    for (li, layer) in layers.iter().enumerate() {
        assert!(!layer.sites.is_empty(), "layer {li} has no sites");
    }
    let states: Vec<LayerState> = layers
        .iter()
        .map(|l| LayerState::Open((0..l.sites.len() as u32).collect()))
        .collect();
    let mut r = Refiner {
        layers,
        cfg: *cfg,
        stats: ApproxStats::default(),
        emit: &mut emit,
    };
    if let Outcome::Uniform(owners) = r.refine(bounds, 0, states) {
        r.stats.leaves += 1;
        (r.emit)(bounds, &owners);
    }
    r.stats
}

/// A single-layer approximate weighted Voronoi diagram: per site, the list
/// of leaf rectangles it `(1+ε)`-dominates. The rectangles of all sites
/// together tile the bounds.
#[derive(Debug, Clone)]
pub struct ApproxDiagram {
    per_site: Vec<Vec<Mbr>>,
    stats: ApproxStats,
}

impl ApproxDiagram {
    /// Refines a single layer (the [`refine_multi`] special case).
    pub fn build(
        sites: &[WeightedSite],
        scheme: WeightScheme,
        bounds: Mbr,
        cfg: &ApproxConfig,
    ) -> Self {
        let mut per_site = vec![Vec::new(); sites.len()];
        let stats = refine_multi(
            &[ApproxLayer { sites, scheme }],
            bounds,
            cfg,
            |rect, owners| {
                per_site[owners[0] as usize].push(rect);
            },
        );
        ApproxDiagram { per_site, stats }
    }

    /// The leaf rectangles `(1+ε)`-dominated by site `i`.
    pub fn site_rects(&self, i: usize) -> &[Mbr] {
        &self.per_site[i]
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.per_site.len()
    }

    /// `true` when the diagram has no sites (construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.per_site.is_empty()
    }

    /// Refinement counters.
    pub fn stats(&self) -> &ApproxStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_sites(n: usize, seed: u64, max_w: f64) -> Vec<WeightedSite> {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as f64 / u32::MAX as f64
        };
        (0..n)
            .map(|_| {
                WeightedSite::new(
                    Point::new(next() * 100.0, next() * 100.0),
                    1.0 + next() * (max_w - 1.0),
                )
            })
            .collect()
    }

    fn bounds() -> Mbr {
        Mbr::new(0.0, 0.0, 100.0, 100.0)
    }

    #[test]
    fn dist_bounds_bracket_true_distances() {
        let r = Mbr::new(2.0, 3.0, 6.0, 9.0);
        for p in [
            Point::new(0.0, 0.0),
            Point::new(4.0, 5.0),
            Point::new(9.0, 1.0),
            Point::new(2.0, 9.0),
        ] {
            let (lo, hi) = (dist_min(&r, p), dist_max(&r, p));
            for i in 0..10 {
                for j in 0..10 {
                    let q = Point::new(
                        r.min_x + (r.max_x - r.min_x) * i as f64 / 9.0,
                        r.min_y + (r.max_y - r.min_y) * j as f64 / 9.0,
                    );
                    let d = p.dist(q);
                    assert!(lo <= d + 1e-12 && d <= hi + 1e-12);
                }
            }
        }
    }

    /// Every emitted leaf's owner must be within (1+ε) of the true minimum
    /// weighted distance at sampled points of the leaf.
    fn check_certificate(
        sites: &[WeightedSite],
        scheme: WeightScheme,
        eps: f64,
        rects: &ApproxDiagram,
    ) {
        for (owner, leaf_rects) in rects.per_site.iter().enumerate() {
            for r in leaf_rects {
                for (fx, fy) in [(0.5, 0.5), (0.05, 0.1), (0.9, 0.95)] {
                    let q = Point::new(
                        r.min_x + fx * (r.max_x - r.min_x),
                        r.min_y + fy * (r.max_y - r.min_y),
                    );
                    let own = bound(scheme, q.dist(sites[owner].loc), sites[owner].weight);
                    let best = sites
                        .iter()
                        .map(|s| bound(scheme, q.dist(s.loc), s.weight))
                        .fold(f64::INFINITY, f64::min);
                    assert!(
                        own <= (1.0 + eps) * best * (1.0 + 1e-9),
                        "owner {owner} at {q}: {own} > (1+{eps})·{best}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_layer_certificate_holds_multiplicative() {
        let sites = pseudo_sites(40, 7, 4.0);
        for eps in [0.5, 0.1, 0.01] {
            let d = ApproxDiagram::build(
                &sites,
                WeightScheme::Multiplicative,
                bounds(),
                &ApproxConfig::new(eps),
            );
            assert!(d.stats().fully_certified());
            check_certificate(&sites, WeightScheme::Multiplicative, eps, &d);
        }
    }

    #[test]
    fn single_layer_certificate_holds_additive() {
        let sites = pseudo_sites(30, 11, 8.0);
        let eps = 0.1;
        let d = ApproxDiagram::build(
            &sites,
            WeightScheme::Additive,
            bounds(),
            &ApproxConfig::new(eps),
        );
        assert!(d.stats().fully_certified());
        check_certificate(&sites, WeightScheme::Additive, eps, &d);
    }

    #[test]
    fn leaves_tile_the_bounds() {
        let sites = pseudo_sites(25, 3, 3.0);
        let d = ApproxDiagram::build(
            &sites,
            WeightScheme::Multiplicative,
            bounds(),
            &ApproxConfig::new(0.2),
        );
        let total: f64 = d
            .per_site
            .iter()
            .flat_map(|rs| rs.iter().map(Mbr::area))
            .sum();
        assert!(
            (total - bounds().area()).abs() < 1e-6 * bounds().area(),
            "leaf area {total} != bounds area {}",
            bounds().area()
        );
        // Interiors are disjoint: no two rects overlap with positive area.
        let all: Vec<Mbr> = d.per_site.iter().flatten().copied().collect();
        assert_eq!(all.len(), d.stats().leaves);
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                let inter = a.intersection(b);
                assert!(
                    inter.is_empty() || inter.area() == 0.0,
                    "{a:?} overlaps {b:?}"
                );
            }
        }
    }

    #[test]
    fn single_site_layer_is_one_leaf() {
        let sites = vec![WeightedSite::new(Point::new(30.0, 40.0), 2.0)];
        let d = ApproxDiagram::build(
            &sites,
            WeightScheme::Multiplicative,
            bounds(),
            &ApproxConfig::new(0.1),
        );
        assert_eq!(d.stats().leaves, 1);
        assert_eq!(d.site_rects(0), &[bounds()]);
    }

    #[test]
    fn deterministic_across_runs() {
        let sites = pseudo_sites(35, 9, 5.0);
        let build = || {
            let mut leaves: Vec<(Mbr, Vec<u32>)> = Vec::new();
            let stats = refine_multi(
                &[ApproxLayer {
                    sites: &sites,
                    scheme: WeightScheme::Multiplicative,
                }],
                bounds(),
                &ApproxConfig::new(0.25),
                |r, o| leaves.push((r, o.to_vec())),
            );
            (leaves, stats)
        };
        let (a, sa) = build();
        let (b, sb) = build();
        assert_eq!(sa, sb);
        assert_eq!(a.len(), b.len());
        for ((ra, oa), (rb, ob)) in a.iter().zip(&b) {
            assert_eq!(oa, ob);
            assert_eq!(
                [
                    ra.min_x.to_bits(),
                    ra.min_y.to_bits(),
                    ra.max_x.to_bits(),
                    ra.max_y.to_bits()
                ],
                [
                    rb.min_x.to_bits(),
                    rb.min_y.to_bits(),
                    rb.max_x.to_bits(),
                    rb.max_y.to_bits()
                ]
            );
        }
    }

    #[test]
    fn joint_refinement_certifies_every_layer() {
        let la = pseudo_sites(20, 1, 3.0);
        let lb = pseudo_sites(15, 2, 6.0);
        let eps = 0.2;
        let mut leaves: Vec<(Mbr, Vec<u32>)> = Vec::new();
        let stats = refine_multi(
            &[
                ApproxLayer {
                    sites: &la,
                    scheme: WeightScheme::Multiplicative,
                },
                ApproxLayer {
                    sites: &lb,
                    scheme: WeightScheme::Additive,
                },
            ],
            bounds(),
            &ApproxConfig::new(eps),
            |r, o| leaves.push((r, o.to_vec())),
        );
        assert!(stats.fully_certified());
        assert_eq!(stats.leaves, leaves.len());
        let area: f64 = leaves.iter().map(|(r, _)| r.area()).sum();
        assert!((area - bounds().area()).abs() < 1e-6 * bounds().area());
        for (r, owners) in &leaves {
            let q = Point::new(0.5 * (r.min_x + r.max_x), 0.5 * (r.min_y + r.max_y));
            for (layer, (sites, scheme)) in [
                (&la, WeightScheme::Multiplicative),
                (&lb, WeightScheme::Additive),
            ]
            .iter()
            .enumerate()
            {
                let own = bound(
                    *scheme,
                    q.dist(sites[owners[layer] as usize].loc),
                    sites[owners[layer] as usize].weight,
                );
                let best = sites
                    .iter()
                    .map(|s| bound(*scheme, q.dist(s.loc), s.weight))
                    .fold(f64::INFINITY, f64::min);
                assert!(own <= (1.0 + eps) * best * (1.0 + 1e-9));
            }
        }
    }

    #[test]
    fn depth_cap_forces_coincident_sites() {
        // Two sites at the same location can never be separated; the depth
        // cap must force a decision instead of recursing forever.
        let sites = vec![
            WeightedSite::new(Point::new(10.0, 10.0), 1.0),
            WeightedSite::new(Point::new(10.0, 10.0), 2.0),
        ];
        let mut cfg = ApproxConfig::new(0.1);
        cfg.max_depth = 8;
        let d = ApproxDiagram::build(&sites, WeightScheme::Multiplicative, bounds(), &cfg);
        assert!(!d.stats().fully_certified());
        assert!(d.stats().deepest <= 8);
        // The lighter site wins everywhere it is forced.
        assert!(d.site_rects(1).is_empty());
    }

    #[test]
    fn smaller_epsilon_means_more_leaves() {
        let sites = pseudo_sites(30, 5, 3.0);
        let coarse = ApproxDiagram::build(
            &sites,
            WeightScheme::Multiplicative,
            bounds(),
            &ApproxConfig::new(0.5),
        );
        let fine = ApproxDiagram::build(
            &sites,
            WeightScheme::Multiplicative,
            bounds(),
            &ApproxConfig::new(0.01),
        );
        assert!(fine.stats().leaves > coarse.stats().leaves);
    }
}
