//! Exact ordinary Voronoi diagrams clipped to a rectangle.

use molq_geom::{ConvexPolygon, Mbr, Point};
use molq_index::KdTree;

/// Errors from Voronoi construction.
#[derive(Debug, Clone, PartialEq)]
pub enum VoronoiError {
    /// No sites given.
    NoSites,
    /// Two sites share the same coordinates (dominance regions would be
    /// ill-defined); the payload is one offending pair.
    DuplicateSites(usize, usize),
    /// The search-space rectangle is empty.
    EmptyBounds,
}

impl std::fmt::Display for VoronoiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VoronoiError::NoSites => write!(f, "no sites"),
            VoronoiError::DuplicateSites(i, j) => {
                write!(f, "duplicate sites at indices {i} and {j}")
            }
            VoronoiError::EmptyBounds => write!(f, "empty search-space rectangle"),
        }
    }
}

impl std::error::Error for VoronoiError {}

/// Receiver for the kd-tree queries a cell construction performs; see
/// [`OrdinaryVoronoi::cell_of_site`]. The plain build passes [`NoTrace`],
/// which the optimizer erases.
pub(crate) trait TraceSink {
    /// A disk around a query point: a site inserted inside it may change
    /// this query's answer (and with it the cell's bits).
    fn disk(&mut self, center: Point, radius_sq: f64);
    /// A site id some query answered with: removing it invalidates the
    /// recorded construction.
    fn answer(&mut self, id: usize);
}

/// A [`TraceSink`] that records nothing.
pub(crate) struct NoTrace;

impl TraceSink for NoTrace {
    fn disk(&mut self, _center: Point, _radius_sq: f64) {}
    fn answer(&mut self, _id: usize) {}
}

/// An ordinary Voronoi diagram of point sites, clipped to a rectangular
/// search space.
///
/// Every cell is an exact convex polygon: the intersection of the bounding
/// rectangle with the perpendicular-bisector half-planes of the site's
/// Voronoi neighbours. Construction is `O(n · k log n)` with `k` the average
/// neighbour count examined (≈ a dozen for well-distributed sites).
#[derive(Debug, Clone)]
pub struct OrdinaryVoronoi {
    pub(crate) sites: Vec<Point>,
    pub(crate) bounds: Mbr,
    pub(crate) cells: Vec<ConvexPolygon>,
    /// Per cell: indices of sites whose bisector contributed an edge.
    pub(crate) neighbors: Vec<Vec<usize>>,
    pub(crate) tree: KdTree,
}

impl OrdinaryVoronoi {
    /// Builds the diagram in parallel with `threads` worker threads (cells
    /// are independent, so this scales near-linearly; the kd-tree is shared
    /// read-only). `threads = 1` is equivalent to [`OrdinaryVoronoi::build`].
    ///
    /// The effective worker count is capped at the host's available cores:
    /// the build is CPU-bound with no blocking, so oversubscription only adds
    /// spawn and scheduling overhead. Cell output is identical at any worker
    /// count.
    pub fn build_parallel(
        sites: &[Point],
        bounds: Mbr,
        threads: usize,
    ) -> Result<Self, VoronoiError> {
        assert!(threads >= 1);
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let workers = threads.min(cores);
        if workers == 1 || sites.len() < 256 {
            return Self::build(sites, bounds);
        }
        let mut vd = Self::validate_inputs(sites, bounds)?;
        let n = sites.len();
        let chunk = n.div_ceil(workers);
        let tree = &vd.tree;
        let results: Vec<(Vec<ConvexPolygon>, Vec<Vec<usize>>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|t| {
                    let lo = (t * chunk).min(n);
                    let hi = ((t + 1) * chunk).min(n);
                    scope.spawn(move || {
                        let mut cells = Vec::with_capacity(hi - lo);
                        let mut nbrs = Vec::with_capacity(hi - lo);
                        for i in lo..hi {
                            let (c, nb) =
                                Self::cell_of_site(tree, sites, i, sites[i], &bounds, &mut NoTrace);
                            cells.push(c);
                            nbrs.push(nb);
                        }
                        (cells, nbrs)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        for (cells, nbrs) in results {
            vd.cells.extend(cells);
            vd.neighbors.extend(nbrs);
        }
        Ok(vd)
    }

    /// Validates inputs and prepares an empty diagram with its kd-tree.
    pub(crate) fn validate_inputs(sites: &[Point], bounds: Mbr) -> Result<Self, VoronoiError> {
        if sites.is_empty() {
            return Err(VoronoiError::NoSites);
        }
        if bounds.is_empty() || bounds.area() == 0.0 {
            return Err(VoronoiError::EmptyBounds);
        }
        let tree = KdTree::from_points(sites);
        for (i, &p) in sites.iter().enumerate() {
            if sites.len() > 1 {
                let two = tree.k_nearest(p, 2);
                let other = if two[0].1 == i { &two[1] } else { &two[0] };
                if other.2 == 0.0 {
                    return Err(VoronoiError::DuplicateSites(i.min(other.1), i.max(other.1)));
                }
            }
        }
        Ok(OrdinaryVoronoi {
            sites: sites.to_vec(),
            bounds,
            cells: Vec::with_capacity(sites.len()),
            neighbors: Vec::with_capacity(sites.len()),
            tree,
        })
    }

    /// Builds the diagram of `sites` within `bounds`.
    pub fn build(sites: &[Point], bounds: Mbr) -> Result<Self, VoronoiError> {
        let mut vd = Self::validate_inputs(sites, bounds)?;
        for (i, &p) in sites.iter().enumerate() {
            let (cell, nbrs) = Self::cell_of_site(&vd.tree, sites, i, p, &bounds, &mut NoTrace);
            vd.cells.push(cell);
            vd.neighbors.push(nbrs);
        }
        Ok(vd)
    }

    /// Computes one site's cell by vertex-certified half-plane clipping.
    ///
    /// Invariant: the working cell always *contains* the true (clipped)
    /// Voronoi cell, since only valid bisector half-planes are applied. A
    /// half-plane `{ l : d(l, q) < d(l, p) }` that intersects a convex
    /// polygon must contain one of its vertices (a linear functional over a
    /// polygon attains its maximum at a vertex), so once every vertex `v` has
    /// `p` as its nearest site, the cell is exactly the Voronoi cell.
    ///
    /// Every kd-tree query the construction makes is reported to `sink`
    /// (a no-op for plain builds): the answer ids, plus an influence disk
    /// outside which a new site provably cannot change that query's answer.
    /// Exact distance ties get an infinite disk — their winner depends on
    /// tree shape, so any change of the site set must recompute the cell.
    /// `incremental::IncrementalVoronoi` replays these records to decide
    /// which cells an insert or remove can possibly touch.
    pub(crate) fn cell_of_site(
        tree: &KdTree,
        sites: &[Point],
        i: usize,
        p: Point,
        bounds: &Mbr,
        sink: &mut impl TraceSink,
    ) -> (ConvexPolygon, Vec<usize>) {
        let n = sites.len();
        let mut cell = ConvexPolygon::from_mbr(bounds);
        let mut contributed: Vec<usize> = Vec::new();
        if n == 1 {
            return (cell, contributed);
        }

        // Seed with a few nearest neighbours so the certification loop
        // starts from a local cell rather than the whole rectangle. One
        // extra neighbour (the 9th) is fetched purely as the trace horizon:
        // a new site farther from `p` than the last *used* seed cannot
        // alter the seed sequence.
        let knn = tree.k_nearest(p, 9.min(n));
        let used = knn.len().min(8);
        {
            // Distances recomputed from the points: bit-exact, where the
            // reported sqrt distances would not be.
            let d_sq: Vec<f64> = knn.iter().map(|&(q, _, _)| p.dist_sq(q)).collect();
            let tied = d_sq.windows(2).any(|w| w[0].to_bits() == w[1].to_bits());
            if tied || knn.len() < 9 {
                // Tie inside (or at the edge of) the seed list, or the set is
                // so small every site seeds: always recompute this cell.
                sink.disk(p, f64::INFINITY);
            } else {
                sink.disk(p, d_sq[used - 1]);
            }
        }
        for &(q, j, _) in knn[..used].iter() {
            sink.answer(j);
            if j == i {
                continue;
            }
            let before = cell.area();
            cell = Self::clip_by_bisector(cell, p, q);
            if cell.area() < before * (1.0 - 1e-12) {
                contributed.push(j);
            }
            if cell.is_empty() {
                return (cell, contributed);
            }
        }

        // Certify vertices: clip whenever some vertex is strictly closer to
        // another site. Every clip removes at least the offending vertex, so
        // the loop terminates; in expectation a couple of rounds suffice.
        'outer: loop {
            let verts: Vec<Point> = cell.vertices().to_vec();
            for v in verts {
                let (q, j, best_sq, second_sq) = tree.nearest2(v).expect("tree is non-empty");
                sink.answer(j);
                sink.disk(
                    v,
                    if second_sq.to_bits() == best_sq.to_bits() {
                        f64::INFINITY
                    } else {
                        best_sq
                    },
                );
                if j == i {
                    continue;
                }
                let dq = v.dist(q);
                let dp = v.dist(p);
                if dq < dp * (1.0 - 1e-12) {
                    let before = cell.area();
                    cell = Self::clip_by_bisector(cell, p, q);
                    if cell.area() < before * (1.0 - 1e-12) {
                        contributed.push(j);
                        if cell.is_empty() {
                            return (cell, contributed);
                        }
                        continue 'outer; // vertices changed; rescan
                    }
                    // Numerical stalemate (grazing bisector): treat the
                    // vertex as certified rather than loop forever.
                }
            }
            break;
        }
        contributed.sort_unstable();
        contributed.dedup();
        // Clips applied while the working cell was still larger than the
        // final cell may contribute no edge of the final cell: keep only
        // sites whose bisector supports an edge (two cell vertices
        // equidistant from both sites).
        let scale = p.norm().max(1.0);
        contributed.retain(|&j| {
            let q = sites[j];
            cell.vertices()
                .iter()
                .filter(|v| (v.dist(p) - v.dist(q)).abs() <= 1e-6 * scale)
                .count()
                >= 2
        });
        (cell, contributed)
    }

    /// Clips `cell` to the half-plane of points closer to `p` than to `q`.
    fn clip_by_bisector(cell: ConvexPolygon, p: Point, q: Point) -> ConvexPolygon {
        let m = p.mid(q);
        let dir = (q - p).perp();
        // Keep the side containing p: left of (m -> m+dir) iff cross > 0.
        let (a, b) = if dir.cross(p - m) >= 0.0 {
            (m, m + dir)
        } else {
            (m + dir, m)
        };
        cell.clip_halfplane(a, b)
    }

    /// The sites, in input order.
    pub fn sites(&self) -> &[Point] {
        &self.sites
    }

    /// Number of sites (= number of cells).
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// `true` when the diagram has no sites (never: construction rejects it).
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The search-space rectangle.
    pub fn bounds(&self) -> &Mbr {
        &self.bounds
    }

    /// The cell of site `i` (clipped to the bounds; may be empty for sites
    /// far outside the rectangle).
    pub fn cell(&self, i: usize) -> &ConvexPolygon {
        &self.cells[i]
    }

    /// All cells, indexed by site.
    pub fn cells(&self) -> &[ConvexPolygon] {
        &self.cells
    }

    /// Indices of the sites whose bisectors bound cell `i` (its Voronoi
    /// neighbours, restricted to those that actually cut the clipped cell).
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.neighbors[i]
    }

    /// Index of the site dominating location `l` (the nearest site).
    pub fn locate(&self, l: Point) -> usize {
        self.tree.nearest(l).expect("diagram has sites").1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_points(n: usize, seed: u64, extent: f64) -> Vec<Point> {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as f64 / u32::MAX as f64
        };
        (0..n)
            .map(|_| Point::new(next() * extent, next() * extent))
            .collect()
    }

    #[test]
    fn rejects_bad_input() {
        let b = Mbr::new(0.0, 0.0, 1.0, 1.0);
        assert!(matches!(
            OrdinaryVoronoi::build(&[], b),
            Err(VoronoiError::NoSites)
        ));
        let p = Point::new(0.5, 0.5);
        assert!(matches!(
            OrdinaryVoronoi::build(&[p, Point::new(0.1, 0.1), p], b),
            Err(VoronoiError::DuplicateSites(0, 2))
        ));
        assert!(matches!(
            OrdinaryVoronoi::build(&[p], Mbr::EMPTY),
            Err(VoronoiError::EmptyBounds)
        ));
    }

    #[test]
    fn single_site_owns_everything() {
        let b = Mbr::new(0.0, 0.0, 4.0, 2.0);
        let vd = OrdinaryVoronoi::build(&[Point::new(1.0, 1.0)], b).unwrap();
        assert_eq!(vd.len(), 1);
        assert!((vd.cell(0).area() - 8.0).abs() < 1e-12);
        assert!(vd.neighbors(0).is_empty());
    }

    #[test]
    fn two_sites_split_by_bisector() {
        let b = Mbr::new(0.0, 0.0, 2.0, 2.0);
        let vd = OrdinaryVoronoi::build(&[Point::new(0.5, 1.0), Point::new(1.5, 1.0)], b).unwrap();
        assert!((vd.cell(0).area() - 2.0).abs() < 1e-12);
        assert!((vd.cell(1).area() - 2.0).abs() < 1e-12);
        assert!(vd.cell(0).contains(Point::new(0.25, 0.5)));
        assert!(vd.cell(1).contains(Point::new(1.75, 0.5)));
        assert_eq!(vd.neighbors(0), &[1]);
        assert_eq!(vd.neighbors(1), &[0]);
    }

    #[test]
    fn cells_tile_the_rectangle() {
        let b = Mbr::new(0.0, 0.0, 100.0, 100.0);
        let pts = pseudo_points(200, 5, 100.0);
        let vd = OrdinaryVoronoi::build(&pts, b).unwrap();
        let total: f64 = vd.cells().iter().map(|c| c.area()).sum();
        assert!(
            (total - b.area()).abs() < 1e-6 * b.area(),
            "total cell area {total} vs bounds {}",
            b.area()
        );
    }

    #[test]
    fn every_cell_contains_its_site() {
        let b = Mbr::new(0.0, 0.0, 50.0, 50.0);
        let pts = pseudo_points(150, 11, 50.0);
        let vd = OrdinaryVoronoi::build(&pts, b).unwrap();
        for (i, p) in pts.iter().enumerate() {
            assert!(vd.cell(i).contains(*p), "site {i} at {p}");
        }
    }

    #[test]
    fn sampled_points_are_nearest_to_their_cells_site() {
        let b = Mbr::new(0.0, 0.0, 10.0, 10.0);
        let pts = pseudo_points(60, 21, 10.0);
        let vd = OrdinaryVoronoi::build(&pts, b).unwrap();
        // Sample a grid of query points; the cell containing each must belong
        // to the nearest site.
        for gi in 0..40 {
            for gj in 0..40 {
                let q = Point::new(0.125 + gi as f64 * 0.25, 0.125 + gj as f64 * 0.25);
                let nearest = vd.locate(q);
                let nd = pts[nearest].dist(q);
                for (i, c) in vd.cells().iter().enumerate() {
                    if c.contains(q) {
                        let d = pts[i].dist(q);
                        assert!(
                            d <= nd + 1e-9,
                            "q={q} in cell {i} (d={d}) but nearest is {nearest} (d={nd})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn site_outside_bounds_may_own_nothing() {
        let b = Mbr::new(0.0, 0.0, 1.0, 1.0);
        // A site far away, fenced off by a ring of closer sites.
        let mut pts = vec![
            Point::new(0.5, 0.5),
            Point::new(0.1, 0.1),
            Point::new(0.9, 0.1),
            Point::new(0.1, 0.9),
            Point::new(0.9, 0.9),
        ];
        pts.push(Point::new(100.0, 100.0));
        let vd = OrdinaryVoronoi::build(&pts, b).unwrap();
        assert!(vd.cell(5).is_empty() || vd.cell(5).area() < 1e-9);
        let total: f64 = vd.cells().iter().map(|c| c.area()).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let b = Mbr::new(0.0, 0.0, 100.0, 100.0);
        let pts = pseudo_points(600, 13, 100.0);
        let seq = OrdinaryVoronoi::build(&pts, b).unwrap();
        let par = OrdinaryVoronoi::build_parallel(&pts, b, 4).unwrap();
        assert_eq!(seq.len(), par.len());
        for i in 0..seq.len() {
            assert!(
                (seq.cell(i).area() - par.cell(i).area()).abs() < 1e-12,
                "cell {i}"
            );
            assert_eq!(seq.neighbors(i), par.neighbors(i), "cell {i}");
        }
    }

    #[test]
    fn parallel_build_small_input_falls_back() {
        let b = Mbr::new(0.0, 0.0, 10.0, 10.0);
        let pts = pseudo_points(20, 14, 10.0);
        let par = OrdinaryVoronoi::build_parallel(&pts, b, 8).unwrap();
        assert_eq!(par.len(), 20);
        let total: f64 = par.cells().iter().map(|c| c.area()).sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn collinear_sites() {
        let b = Mbr::new(0.0, 0.0, 4.0, 1.0);
        let pts: Vec<Point> = (0..4).map(|i| Point::new(0.5 + i as f64, 0.5)).collect();
        let vd = OrdinaryVoronoi::build(&pts, b).unwrap();
        for i in 0..4 {
            assert!((vd.cell(i).area() - 1.0).abs() < 1e-9, "cell {i}");
        }
    }

    #[test]
    fn grid_sites_have_square_cells() {
        let b = Mbr::new(0.0, 0.0, 4.0, 4.0);
        let mut pts = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                pts.push(Point::new(0.5 + i as f64, 0.5 + j as f64));
            }
        }
        let vd = OrdinaryVoronoi::build(&pts, b).unwrap();
        for i in 0..16 {
            assert!((vd.cell(i).area() - 1.0).abs() < 1e-9, "cell {i}");
        }
        // Interior site (1.5, 1.5) has exactly 4 contributing neighbours
        // (diagonal bisectors only graze at corners and contribute no edge).
        let center_idx = pts.iter().position(|p| *p == Point::new(1.5, 1.5)).unwrap();
        assert!(vd.neighbors(center_idx).len() >= 4);
    }
}
