//! Incremental Bowyer–Watson Delaunay triangulation.
//!
//! Uses the robust `orient2d`/`incircle` predicates from `molq-geom`, walk
//! point-location seeded from the most recent triangle, and a super-triangle
//! whose vertices lie far outside the data extent.
//!
//! Note on the super-triangle: the structure built here is the Delaunay
//! triangulation of the input points *plus* three distant artificial
//! vertices. Every triangle among real points therefore satisfies the
//! empty-circumcircle property with respect to all real points (tested), but
//! a few hull triangles of the pure-input Delaunay triangulation may be
//! absent. The MOLQ pipeline does not consume this structure for region
//! construction — [`crate::ordinary`] builds cells directly — so the caveat
//! only bounds what the adjacency accessors promise.

use molq_geom::robust::{incircle, orient2d};
use molq_geom::{Circle, Point};

/// A triangle: vertex indices (CCW) and neighbour triangle across the edge
/// opposite each vertex.
#[derive(Debug, Clone)]
struct Tri {
    v: [usize; 3],
    /// `n[i]` is the triangle sharing the edge `(v[i+1], v[i+2])`.
    n: [Option<usize>; 3],
    alive: bool,
}

/// An incremental Delaunay triangulation.
#[derive(Debug, Clone)]
pub struct Delaunay {
    /// Real points followed by the three super-triangle vertices.
    pts: Vec<Point>,
    real_n: usize,
    tris: Vec<Tri>,
    /// Seed triangle for the next walk.
    last: usize,
}

impl Delaunay {
    /// Triangulates `points`. Exact duplicates are inserted once (subsequent
    /// copies are skipped); the triangulation then covers the distinct
    /// points.
    ///
    /// Returns `None` when fewer than one point is given.
    pub fn build(points: &[Point]) -> Option<Self> {
        if points.is_empty() {
            return None;
        }
        // Super-triangle around the data extent.
        let mbr = molq_geom::Mbr::of_points(points.iter().copied());
        let cx = (mbr.min_x + mbr.max_x) * 0.5;
        let cy = (mbr.min_y + mbr.max_y) * 0.5;
        let ext = (mbr.width().max(mbr.height()).max(1.0)) * 1e3;
        let n = points.len();
        let mut pts = points.to_vec();
        pts.push(Point::new(cx - 3.0 * ext, cy - ext));
        pts.push(Point::new(cx + 3.0 * ext, cy - ext));
        pts.push(Point::new(cx, cy + 3.0 * ext));

        let mut dt = Delaunay {
            pts,
            real_n: n,
            tris: vec![Tri {
                v: [n, n + 1, n + 2],
                n: [None; 3],
                alive: true,
            }],
            last: 0,
        };
        for i in 0..n {
            dt.insert(i);
        }
        Some(dt)
    }

    /// Number of real (non-super) points.
    pub fn len(&self) -> usize {
        self.real_n
    }

    /// `true` when there are no real points.
    pub fn is_empty(&self) -> bool {
        self.real_n == 0
    }

    /// The real input points.
    pub fn points(&self) -> &[Point] {
        &self.pts[..self.real_n]
    }

    fn insert(&mut self, pi: usize) {
        let p = self.pts[pi];
        let Some(start) = self.locate(p) else {
            return; // walk failed (duplicate handled below anyway)
        };
        // Skip exact duplicates.
        if self.tris[start]
            .v
            .iter()
            .any(|&v| self.pts[v] == p && v != pi)
        {
            return;
        }

        // Grow the cavity: all triangles whose circumcircle contains p.
        let mut in_cavity = vec![false; self.tris.len()];
        let mut cavity = vec![start];
        in_cavity[start] = true;
        let mut stack = vec![start];
        while let Some(t) = stack.pop() {
            for i in 0..3 {
                if let Some(nb) = self.tris[t].n[i] {
                    if !in_cavity[nb] && self.in_circumcircle(nb, p) {
                        in_cavity[nb] = true;
                        cavity.push(nb);
                        stack.push(nb);
                    }
                }
            }
        }

        // Boundary edges of the cavity, CCW-directed as seen from inside.
        // (a, b, outer neighbour, index of this edge in the outer neighbour)
        let mut boundary: Vec<(usize, usize, Option<usize>)> = Vec::new();
        for &t in &cavity {
            for i in 0..3 {
                let nb = self.tris[t].n[i];
                let outside = nb.map(|x| !in_cavity[x]).unwrap_or(true);
                if outside {
                    let a = self.tris[t].v[(i + 1) % 3];
                    let b = self.tris[t].v[(i + 2) % 3];
                    boundary.push((a, b, nb));
                }
            }
        }

        // Kill cavity triangles.
        for &t in &cavity {
            self.tris[t].alive = false;
        }

        // Fan: one new triangle (a, b, p) per boundary edge.
        // Map from starting vertex a -> new triangle index for fan linking.
        let base = self.tris.len();
        let mut start_of: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::with_capacity(boundary.len());
        for (k, &(a, b, outer)) in boundary.iter().enumerate() {
            let idx = base + k;
            self.tris.push(Tri {
                v: [a, b, pi],
                // n[0] across (b, p): fan; n[1] across (p, a): fan;
                // n[2] across (a, b): outer.
                n: [None, None, outer],
                alive: true,
            });
            start_of.insert(a, idx);
            // Fix the outer neighbour's backlink across exactly the shared
            // edge {a, b} (an outer triangle can border the cavity on more
            // than one edge, so matching "points into the cavity" is not
            // enough).
            if let Some(o) = outer {
                for j in 0..3 {
                    let ea = self.tris[o].v[(j + 1) % 3];
                    let eb = self.tris[o].v[(j + 2) % 3];
                    if (ea == a && eb == b) || (ea == b && eb == a) {
                        self.tris[o].n[j] = Some(idx);
                    }
                }
            }
        }
        // Link fan neighbours: triangle (a, b, p) borders the fan triangle
        // starting at b across edge (b, p).
        for (k, &(_a, b, _)) in boundary.iter().enumerate() {
            let idx = base + k;
            let next = start_of[&b];
            self.tris[idx].n[0] = Some(next);
            self.tris[next].n[1] = Some(idx);
        }
        self.last = base;
    }

    fn in_circumcircle(&self, t: usize, p: Point) -> bool {
        let v = &self.tris[t].v;
        incircle(self.pts[v[0]], self.pts[v[1]], self.pts[v[2]], p) > 0.0
    }

    /// Walks from the last created triangle to one containing `p`.
    fn locate(&self, p: Point) -> Option<usize> {
        let mut cur = self.last;
        if !self.tris[cur].alive {
            cur = self.tris.iter().rposition(|t| t.alive)?;
        }
        let mut steps = 0usize;
        let max_steps = self.tris.len() * 4 + 64;
        'walk: loop {
            steps += 1;
            if steps > max_steps {
                break;
            }
            let t = &self.tris[cur];
            for i in 0..3 {
                let a = self.pts[t.v[(i + 1) % 3]];
                let b = self.pts[t.v[(i + 2) % 3]];
                if orient2d(a, b, p) < 0.0 {
                    match t.n[i] {
                        Some(nb) => {
                            cur = nb;
                            continue 'walk;
                        }
                        None => break 'walk, // outside the super-triangle
                    }
                }
            }
            return Some(cur);
        }
        // Fallback: linear scan (degenerate walk cycles are possible only on
        // adversarial input; correctness beats speed here).
        (0..self.tris.len()).find(|&t| {
            self.tris[t].alive
                && (0..3).all(|i| {
                    let a = self.pts[self.tris[t].v[(i + 1) % 3]];
                    let b = self.pts[self.tris[t].v[(i + 2) % 3]];
                    orient2d(a, b, p) >= 0.0
                })
        })
    }

    /// Triangles among real points only, as CCW vertex-index triples.
    pub fn triangles(&self) -> Vec<[usize; 3]> {
        self.tris
            .iter()
            .filter(|t| t.alive && t.v.iter().all(|&v| v < self.real_n))
            .map(|t| t.v)
            .collect()
    }

    /// Circumcenters of all real triangles (the dual Voronoi vertices).
    pub fn circumcenters(&self) -> Vec<Point> {
        self.triangles()
            .iter()
            .filter_map(|t| {
                Circle::circumcircle(self.pts[t[0]], self.pts[t[1]], self.pts[t[2]])
                    .map(|c| c.center)
            })
            .collect()
    }

    /// Adjacency lists over real points induced by real triangles (Delaunay
    /// edges; hull-adjacent pairs may be missing, see the module docs).
    pub fn neighbor_lists(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.real_n];
        for t in self.triangles() {
            for k in 0..3 {
                let a = t[k];
                let b = t[(k + 1) % 3];
                if !adj[a].contains(&b) {
                    adj[a].push(b);
                }
                if !adj[b].contains(&a) {
                    adj[b].push(a);
                }
            }
        }
        for l in &mut adj {
            l.sort_unstable();
        }
        adj
    }

    /// Verifies the Delaunay invariant: no real point lies strictly inside
    /// the circumcircle of any real triangle. `O(T · n)` — test use only.
    pub fn is_delaunay(&self) -> bool {
        let tris = self.triangles();
        for t in &tris {
            let (a, b, c) = (self.pts[t[0]], self.pts[t[1]], self.pts[t[2]]);
            for (i, &p) in self.pts[..self.real_n].iter().enumerate() {
                if t.contains(&i) {
                    continue;
                }
                if incircle(a, b, c, p) > 0.0 {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_points(n: usize, seed: u64, extent: f64) -> Vec<Point> {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as f64 / u32::MAX as f64
        };
        (0..n)
            .map(|_| Point::new(next() * extent, next() * extent))
            .collect()
    }

    #[test]
    fn empty_input() {
        assert!(Delaunay::build(&[]).is_none());
    }

    #[test]
    fn triangle_of_three_points() {
        let dt = Delaunay::build(&[
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ])
        .unwrap();
        let tris = dt.triangles();
        assert_eq!(tris.len(), 1);
        assert!(dt.is_delaunay());
    }

    #[test]
    fn square_gives_two_triangles() {
        let dt = Delaunay::build(&[
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ])
        .unwrap();
        assert_eq!(dt.triangles().len(), 2);
        assert!(dt.is_delaunay());
    }

    #[test]
    fn random_points_satisfy_delaunay_invariant() {
        let pts = pseudo_points(120, 17, 10.0);
        let dt = Delaunay::build(&pts).unwrap();
        assert!(dt.is_delaunay());
        // Euler sanity: for n points with h hull points, triangles among the
        // real points are at most 2n - 2 - h < 2n.
        assert!(dt.triangles().len() < 2 * pts.len());
    }

    #[test]
    fn grid_points_with_cocircular_quads() {
        // A regular grid is maximally degenerate (every quad co-circular).
        let mut pts = Vec::new();
        for i in 0..8 {
            for j in 0..8 {
                pts.push(Point::new(i as f64, j as f64));
            }
        }
        let dt = Delaunay::build(&pts).unwrap();
        assert!(dt.is_delaunay());
        // A full triangulation of an 8x8 grid has 2*49 = 98 interior
        // triangles; super-triangle effects may drop a handful on the hull.
        assert!(dt.triangles().len() >= 90, "{}", dt.triangles().len());
    }

    #[test]
    fn duplicates_are_skipped() {
        let p = Point::new(0.5, 0.5);
        let dt = Delaunay::build(&[
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            p,
            p,
            Point::new(0.0, 1.0),
        ])
        .unwrap();
        assert!(dt.is_delaunay());
    }

    #[test]
    fn collinear_points_produce_no_real_triangles() {
        let pts: Vec<Point> = (0..5).map(|i| Point::new(i as f64, 0.0)).collect();
        let dt = Delaunay::build(&pts).unwrap();
        assert!(dt.triangles().is_empty());
    }

    #[test]
    fn neighbor_lists_are_symmetric() {
        let pts = pseudo_points(80, 4, 100.0);
        let dt = Delaunay::build(&pts).unwrap();
        let adj = dt.neighbor_lists();
        for (i, l) in adj.iter().enumerate() {
            for &j in l {
                assert!(adj[j].contains(&i), "asymmetric edge {i}-{j}");
            }
        }
    }

    #[test]
    fn circumcenters_exist_for_all_triangles() {
        let pts = pseudo_points(50, 8, 10.0);
        let dt = Delaunay::build(&pts).unwrap();
        assert_eq!(dt.circumcenters().len(), dt.triangles().len());
    }

    #[test]
    fn larger_instance_is_delaunay() {
        let pts = pseudo_points(600, 99, 1000.0);
        let dt = Delaunay::build(&pts).unwrap();
        assert!(dt.is_delaunay());
    }
}
