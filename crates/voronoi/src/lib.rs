//! Voronoi substrate for the MOLQ reproduction.
//!
//! The paper's *VD Generator* (framework step 1) produces one Voronoi diagram
//! per POI type, which the MOVD Overlapper then combines. This crate builds
//! those diagrams from scratch:
//!
//! * [`ordinary::OrdinaryVoronoi`] — exact ordinary Voronoi
//!   cells clipped to a rectangular search space. Cells are constructed per
//!   site by clipping the search rectangle with perpendicular-bisector
//!   half-planes, then *vertex-certified*: every cell vertex is checked
//!   against its nearest site and the cell is re-clipped until all vertices
//!   are owned by the cell's site — a dominating half-plane intersecting a
//!   convex polygon must contain one of its vertices, so termination proves
//!   exactness. No global topological structure that could corrupt on
//!   degenerate input.
//! * [`delaunay::Delaunay`] — an incremental Bowyer–Watson Delaunay
//!   triangulation with robust predicates and walk point-location; the dual
//!   ordinary-Voronoi adjacency is cross-checked against the cell
//!   construction in tests.
//! * [`weighted::WeightedVoronoi`] — multiplicatively and
//!   additively weighted diagrams (Fig 5 of the paper): exact dominance
//!   predicates, analytic superset MBRs of dominance regions (Apollonius
//!   disks) for the MBRB path, and sampled region membership. Real boundary
//!   polygons of weighted regions are *not* maintained — the paper itself
//!   notes this is "extremely difficult" and uses it to motivate MBRB.
//! * [`approx::ApproxDiagram`] — quadtree-refinement `(1+ε)`-approximate
//!   weighted diagrams with certified dominance, plus
//!   [`approx::refine_multi`], the joint multi-layer refiner behind the
//!   approximate MOVD build mode.
//! * [`builder::DiagramBuilder`] — the mode-aware seam through which the
//!   MOVD pipeline constructs layer regions: exact clipping and quadtree
//!   approximation are interchangeable strategies.

pub mod approx;
pub mod builder;
pub mod contour;
pub mod delaunay;
pub mod incremental;
pub mod ordinary;
pub mod weighted;

pub use approx::{refine_multi, ApproxConfig, ApproxDiagram, ApproxLayer, ApproxStats};
pub use builder::{BuildStrategy, DiagramBuilder, LayerRegions};
pub use contour::region_polygons;

pub use delaunay::Delaunay;
pub use incremental::IncrementalVoronoi;
pub use ordinary::{OrdinaryVoronoi, VoronoiError};
pub use weighted::{WeightScheme, WeightedSite, WeightedVoronoi};
