//! Cross-validation between the independent Voronoi constructions:
//! vertex-certified cells vs the Bowyer–Watson Delaunay dual, weighted
//! diagrams vs ordinary ones, and brute-force nearest-site oracles.

use molq_geom::{Mbr, Point};
use molq_voronoi::{Delaunay, OrdinaryVoronoi, WeightScheme, WeightedSite, WeightedVoronoi};

fn pseudo_points(n: usize, seed: u64, extent: f64) -> Vec<Point> {
    let mut s = seed;
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (s >> 33) as f64 / u32::MAX as f64
    };
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let p = Point::new(next() * extent, next() * extent);
        if !out.contains(&p) {
            out.push(p);
        }
    }
    out
}

#[test]
fn voronoi_neighbors_are_delaunay_edges() {
    // Every pair of sites whose bisector contributes a cell edge in the
    // *interior* of the domain must be a Delaunay edge. (Cells clipped by
    // the rectangle can gain or lose neighbours near the boundary, so the
    // check is restricted to cells away from it.)
    let bounds = Mbr::new(0.0, 0.0, 100.0, 100.0);
    let pts = pseudo_points(120, 31, 100.0);
    let vd = OrdinaryVoronoi::build(&pts, bounds).unwrap();
    let dt = Delaunay::build(&pts).unwrap();
    let adj = dt.neighbor_lists();
    let interior = Mbr::new(20.0, 20.0, 80.0, 80.0);
    let mut checked = 0;
    for (i, neighbours) in adj.iter().enumerate().take(pts.len()) {
        if !interior.contains_mbr(&vd.cell(i).mbr()) {
            continue;
        }
        for &j in vd.neighbors(i) {
            assert!(
                neighbours.contains(&j),
                "cell neighbour {i}-{j} is not a Delaunay edge"
            );
            checked += 1;
        }
    }
    assert!(checked > 50, "too few interior cells checked: {checked}");
}

#[test]
fn locate_agrees_with_bruteforce_nearest() {
    let bounds = Mbr::new(0.0, 0.0, 100.0, 100.0);
    let pts = pseudo_points(80, 32, 100.0);
    let vd = OrdinaryVoronoi::build(&pts, bounds).unwrap();
    for k in 0..200 {
        let q = Point::new((k as f64 * 7.31) % 100.0, (k as f64 * 3.77) % 100.0);
        let got = vd.locate(q);
        let want = pts
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.dist_sq(q).total_cmp(&b.dist_sq(q)))
            .unwrap()
            .0;
        assert!(
            (pts[got].dist(q) - pts[want].dist(q)).abs() < 1e-12,
            "locate {got} vs brute {want} at {q}"
        );
    }
}

#[test]
fn weighted_with_equal_weights_equals_ordinary() {
    let bounds = Mbr::new(0.0, 0.0, 100.0, 100.0);
    let pts = pseudo_points(50, 33, 100.0);
    let ovd = OrdinaryVoronoi::build(&pts, bounds).unwrap();
    for scheme in [WeightScheme::Multiplicative, WeightScheme::Additive] {
        let sites: Vec<WeightedSite> = pts.iter().map(|&p| WeightedSite::new(p, 2.0)).collect();
        let wvd = WeightedVoronoi::build(&sites, scheme, bounds);
        for k in 0..100 {
            let q = Point::new((k as f64 * 9.13) % 100.0, (k as f64 * 5.71) % 100.0);
            let a = ovd.locate(q);
            let b = wvd.dominator(q);
            // Ties can break differently; accept equal distances.
            assert!(
                (pts[a].dist(q) - pts[b].dist(q)).abs() < 1e-12,
                "{scheme:?} at {q}: ordinary {a}, weighted {b}"
            );
        }
    }
}

#[test]
fn weighted_dominator_matches_bruteforce() {
    let bounds = Mbr::new(0.0, 0.0, 100.0, 100.0);
    let pts = pseudo_points(40, 34, 100.0);
    let sites: Vec<WeightedSite> = pts
        .iter()
        .enumerate()
        .map(|(i, &p)| WeightedSite::new(p, 0.5 + (i % 7) as f64))
        .collect();
    let wvd = WeightedVoronoi::build(&sites, WeightScheme::Multiplicative, bounds);
    for k in 0..100 {
        let q = Point::new((k as f64 * 11.3) % 100.0, (k as f64 * 6.1) % 100.0);
        let got = wvd.dominator(q);
        let want = sites
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                (a.weight * q.dist(a.loc)).total_cmp(&(b.weight * q.dist(b.loc)))
            })
            .unwrap()
            .0;
        let (gd, wd) = (
            sites[got].weight * q.dist(sites[got].loc),
            sites[want].weight * q.dist(sites[want].loc),
        );
        assert!((gd - wd).abs() < 1e-12, "at {q}: {got} vs {want}");
    }
}

#[test]
fn delaunay_matches_voronoi_on_grids() {
    // Degenerate (cocircular) configurations: both structures must still
    // agree on nearest-site semantics.
    let bounds = Mbr::new(-1.0, -1.0, 8.0, 8.0);
    let mut pts = Vec::new();
    for i in 0..7 {
        for j in 0..7 {
            pts.push(Point::new(i as f64, j as f64));
        }
    }
    let vd = OrdinaryVoronoi::build(&pts, bounds).unwrap();
    let dt = Delaunay::build(&pts).unwrap();
    assert!(dt.is_delaunay());
    let total: f64 = vd.cells().iter().map(|c| c.area()).sum();
    assert!((total - bounds.area()).abs() < 1e-9);
}
