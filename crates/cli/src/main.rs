//! `molq` — command-line front end for the MOLQ library.
//!
//! ```text
//! molq generate --layer SCH --n 500 --seed 42 --out sch.csv
//! molq solve --algo rrb --input stm.csv --input ch.csv --input sch.csv
//! molq render --mode rrb --input stm.csv --input ch.csv --out movd.svg
//! ```

use molq_cli::{run, usage};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", usage());
            std::process::exit(1);
        }
    }
}
