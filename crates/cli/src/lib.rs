//! Implementation of the `molq` command-line interface (testable as a
//! library: [`run`] takes argv and returns the report it would print).

use molq_core::prelude::*;
use molq_core::solutions::pruned::solve_pruned;
use molq_core::solutions::tiled::solve_tiled;
use molq_datagen::csv::{read_csv, write_csv};
use molq_datagen::geonames::layer_object_set;
use molq_datagen::GeoLayer;
use molq_fw::StoppingRule;
use molq_geom::Mbr;
use std::fmt::Write as _;
use std::fs::File;
use std::io::Write as _;

/// Usage text.
pub fn usage() -> String {
    "\
molq — multi-criteria optimal location queries (EDBT 2014 reproduction)

USAGE:
  molq generate --layer <STM|CH|SCH|PPL|BLDG> --n <count> --out <file.csv>
                [--seed <u64>] [--wt <f64>] [--zipf <s>]
                [--bounds x0,y0,x1,y1]
  molq solve    --input <file.csv> [--input <file.csv> ...]
                [--algo <ssc|rrb|mbrb|pruned|tiled|topk>] [--eps <f64>]
                [--tiles <n>] [--k <n>] [--bounds x0,y0,x1,y1]
                [--threads <n>]
  molq render   --input <file.csv> [--input <file.csv> ...] --out <file.svg>
                [--mode <rrb|mbrb|voronoi>] [--width <px>]
                [--bounds x0,y0,x1,y1]
  molq serve    --input <file.csv> [--input <file.csv> ...]
                [--algo <rrb|mbrb>] [--host <addr>] [--port <u16>]
                [--workers <n>] [--name <dataset>] [--eps <f64>]
                [--epsilon <f64>] [--bounds x0,y0,x1,y1]
                [--shutdown-after <seconds>]
                [--snapshot-dir <dir>] [--request-timeout <seconds>]
                [--threads <n>] [--transport <pool|epoll>] [--shards <n>]
  molq snapshot build   --input <file.csv> [--input <file.csv> ...]
                        --dir <dir> [--name <dataset>] [--algo <rrb|mbrb>]
                        [--eps <f64>] [--epsilon <f64>]
                        [--bounds x0,y0,x1,y1]
  molq snapshot inspect --file <file.molq>
  molq snapshot verify  --file <file.molq>
  molq update add     --dir <dir> [--name <dataset>] --set <name|index>
                      --x <f64> --y <f64> [--wt <f64>] [--wo <f64>]
  molq update remove  --dir <dir> [--name <dataset>] --set <name|index>
                      --index <n>
  molq update compact --dir <dir> [--name <dataset>]

Bounds default to the MBR of the input objects inflated by 5%.
--epsilon > 0 builds the dataset with the tiered approximate pipeline
(quadtree refinement, near-linear construction): answers cost at most
(1+ε) times the true optimum and carry that certified factor; live
updates require an exact build. Omitted or 0 runs the exact pipeline.
`serve` builds the MOVD once and answers /locate, /solve, /topk, /health,
/stats, POST /reload, and live updates (POST /datasets/<name>/objects,
DELETE /datasets/<name>/objects/<index>) over HTTP until SIGINT (or
--shutdown-after); with
--snapshot-dir the build is persisted as <dir>/<name>.molq and restored on
later starts when the source CSVs are unchanged. Requests are cancelled at
--request-timeout (default 10 s; per-request ?deadline_ms= tightens it) and
answer 504; the MOLQ_FAULTS env var arms fault injection for chaos drills. `snapshot build` prepares
such a file ahead of time; `inspect` describes one (surviving damage);
`verify` fully validates one and exits non-zero on any defect. Both also
cover the <name>.journal sidecar when one sits next to the snapshot.

`update` edits a snapshot offline through the same incremental patch layer
the server uses: the change is appended to the write-ahead journal
<dir>/<name>.journal and the patched dataset is byte-identical to a full
rebuild over the updated objects. `compact` folds the journal into a new
base file (epoch + 1) and resets the journal.

--threads runs the OVR scans (and the serve-time Overlapper) on a worker
pool; answers are bit-identical at any thread count. Defaults to the
MOLQ_THREADS env var, else serial for solve and all cores for serve.

--transport picks the socket layer: the portable blocking worker pool
(default) or the Linux epoll readiness event loop; responses are
byte-identical either way. Defaults to the MOLQ_TRANSPORT env var.
--shards spreads named datasets across engine replicas with deterministic
rendezvous routing; batch queries land on POST /solve_batch and
POST /topk_batch.
"
    .to_string()
}

/// Parsed flag set: `--key value` pairs, `--key` repeated collects.
struct Flags {
    pairs: Vec<(String, String)>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let k = &args[i];
            if !k.starts_with("--") {
                return Err(format!("expected a --flag, got {k:?}"));
            }
            let v = args
                .get(i + 1)
                .ok_or_else(|| format!("flag {k} needs a value"))?;
            pairs.push((k[2..].to_string(), v.clone()));
            i += 2;
        }
        Ok(Flags { pairs })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_all(&self, key: &str) -> Vec<&str> {
        self.pairs
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    fn parse_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("--{key}: {e}")),
        }
    }

    fn parse_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("--{key}: {e}")),
        }
    }
}

/// `--threads` as an [`ExecConfig`]: an explicit flag wins, otherwise
/// `default` (which the callers derive from the `MOLQ_THREADS` env).
fn exec_flag(flags: &Flags, default: ExecConfig) -> Result<ExecConfig, String> {
    match flags.get("threads") {
        None => Ok(default),
        Some(v) => match v.parse::<usize>() {
            Ok(t) if t >= 1 => Ok(ExecConfig::new(t)),
            _ => Err(format!("--threads: {v:?} is not a positive integer")),
        },
    }
}

/// `--epsilon` as a [`BuildMode`]: absent or 0 is the exact pipeline, a
/// positive value selects the quadtree (1+ε) approximate builder.
fn build_mode_flag(flags: &Flags) -> Result<BuildMode, String> {
    match flags.get("epsilon") {
        None => Ok(BuildMode::Exact),
        Some(v) => {
            let e: f64 = v.parse().map_err(|e| format!("--epsilon: {e}"))?;
            if !e.is_finite() || e < 0.0 {
                return Err("--epsilon must be a finite non-negative number".into());
            }
            Ok(BuildMode::from_epsilon(Some(e)))
        }
    }
}

fn parse_bounds(s: &str) -> Result<Mbr, String> {
    let parts: Vec<f64> = s
        .split(',')
        .map(|p| p.trim().parse::<f64>())
        .collect::<Result<_, _>>()
        .map_err(|e| format!("--bounds: {e}"))?;
    if parts.len() != 4 || parts[0] >= parts[2] || parts[1] >= parts[3] {
        return Err("--bounds must be x0,y0,x1,y1 with x0<x1 and y0<y1".into());
    }
    Ok(Mbr::new(parts[0], parts[1], parts[2], parts[3]))
}

fn parse_layer(s: &str) -> Result<GeoLayer, String> {
    GeoLayer::ALL
        .iter()
        .copied()
        .find(|l| l.code().eq_ignore_ascii_case(s))
        .ok_or_else(|| format!("unknown layer {s:?} (STM, CH, SCH, PPL, BLDG)"))
}

fn load_sets(flags: &Flags) -> Result<Vec<ObjectSet>, String> {
    let inputs = flags.get_all("input");
    if inputs.is_empty() {
        return Err("at least one --input CSV is required".into());
    }
    inputs
        .iter()
        .map(|path| {
            let f = File::open(path).map_err(|e| format!("{path}: {e}"))?;
            let name = std::path::Path::new(path)
                .file_stem()
                .map(|s| s.to_string_lossy().to_string())
                .unwrap_or_else(|| path.to_string());
            read_csv(&name, f).map_err(|e| format!("{path}: {e}"))
        })
        .collect()
}

fn bounds_for(flags: &Flags, sets: &[ObjectSet]) -> Result<Mbr, String> {
    if let Some(b) = flags.get("bounds") {
        return parse_bounds(b);
    }
    let m = sets
        .iter()
        .flat_map(|s| s.objects.iter().map(|o| o.loc))
        .fold(Mbr::EMPTY, |acc, p| acc.union(&Mbr::of_point(p)));
    if m.is_empty() {
        return Err("cannot infer bounds from empty inputs".into());
    }
    Ok(m.inflate(0.05 * m.margin().max(1.0)))
}

/// Runs a CLI invocation; returns the report to print.
pub fn run(args: &[String]) -> Result<String, String> {
    let Some(cmd) = args.first() else {
        return Err("missing command".into());
    };
    if cmd == "snapshot" {
        // `snapshot` takes a positional subcommand before its flags.
        return snapshot(&args[1..]);
    }
    if cmd == "update" {
        // So does `update`.
        return update(&args[1..]);
    }
    let flags = Flags::parse(&args[1..])?;
    match cmd.as_str() {
        "generate" => generate(&flags),
        "solve" => solve(&flags),
        "render" => render(&flags),
        "serve" => serve(&flags),
        other => Err(format!("unknown command {other:?}")),
    }
}

fn snapshot(args: &[String]) -> Result<String, String> {
    let Some(sub) = args.first() else {
        return Err("snapshot needs a subcommand (build, inspect, verify)".into());
    };
    let flags = Flags::parse(&args[1..])?;
    match sub.as_str() {
        "build" => snapshot_build(&flags),
        "inspect" => snapshot_inspect(&flags),
        "verify" => snapshot_verify(&flags),
        other => Err(format!(
            "unknown snapshot subcommand {other:?} (build, inspect, verify)"
        )),
    }
}

fn snapshot_build(flags: &Flags) -> Result<String, String> {
    use molq_server::engine::{DatasetSpec, Engine, LoadOutcome};

    let inputs = flags.get_all("input");
    if inputs.is_empty() {
        return Err("at least one --input CSV is required".into());
    }
    let dir = std::path::PathBuf::from(flags.get("dir").ok_or("--dir is required")?);
    let boundary = match flags.get("algo").unwrap_or("rrb") {
        "rrb" => Boundary::Rrb,
        "mbrb" => Boundary::Mbrb,
        other => return Err(format!("unknown --algo {other:?} (rrb, mbrb)")),
    };
    let spec = DatasetSpec {
        name: flags.get("name").unwrap_or("default").to_string(),
        paths: inputs.iter().map(std::path::PathBuf::from).collect(),
        boundary,
        bounds: flags.get("bounds").map(parse_bounds).transpose()?,
        eps: flags.parse_f64("eps", 1e-3)?,
        build: build_mode_flag(flags)?,
        snapshot_dir: Some(dir),
    };
    let file = spec.snapshot_file().expect("snapshot_dir is set");
    let t = std::time::Instant::now();
    let (snap, outcome) = Engine::new().load_traced(spec)?;
    let dt = t.elapsed();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} {} ({} sets, {} objects, {} OVRs) in {dt:?}",
        match outcome {
            LoadOutcome::BuiltFromCsv => "built",
            LoadOutcome::LoadedFromSnapshot => "already up to date:",
        },
        file.display(),
        snap.set_count(),
        snap.object_count(),
        snap.index.len(),
    );
    Ok(out)
}

fn snapshot_file_flag(flags: &Flags) -> Result<std::path::PathBuf, String> {
    flags
        .get("file")
        .map(std::path::PathBuf::from)
        .ok_or_else(|| "--file is required".into())
}

fn snapshot_inspect(flags: &Flags) -> Result<String, String> {
    let path = snapshot_file_flag(flags)?;
    let info = molq_store::inspect_file(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "file      : {} ({} bytes)",
        path.display(),
        info.file_len
    );
    let _ = writeln!(out, "version   : {}", info.container.version);
    for (i, &(tag, len, crc)) in info.container.sections.iter().enumerate() {
        let name = match tag {
            1 => "META",
            2 => "SETS",
            3 => "MOVD",
            4 => "GRID",
            5 => "EPOCH",
            6 => "BUILD",
            _ => "????",
        };
        let _ = writeln!(
            out,
            "section {tag:>2} : {name} {len} bytes, crc {crc:#010x} ({})",
            if info.checksums_ok[i] {
                "ok"
            } else {
                "CORRUPT"
            }
        );
    }
    match info.summary {
        Some(s) => {
            let _ = writeln!(
                out,
                "dataset   : {} ({:?}, eps {}, {} sets, {} objects, {} OVRs, {}x{} grid)",
                s.name, s.boundary, s.eps, s.sets, s.objects, s.ovrs, s.grid.0, s.grid.1
            );
            let _ = writeln!(
                out,
                "epoch     : {} (compaction generation)",
                s.update_epoch
            );
            if s.build.mode.is_approx() {
                let _ = writeln!(
                    out,
                    "build     : approx (ε {}, certified factor {}, {} leaves, depth {}, \
                     {} forced)",
                    s.build.mode.epsilon(),
                    s.build.certified_factor(),
                    s.build.leaves,
                    s.build.refinement_depth,
                    s.build.forced_leaves
                );
            } else {
                let _ = writeln!(out, "build     : exact");
            }
            for src in &s.sources {
                let _ = writeln!(
                    out,
                    "source    : {} ({} bytes, fnv1a64 {:#018x})",
                    src.path, src.size, src.hash
                );
            }
        }
        None => {
            let _ = writeln!(out, "dataset   : <not decodable>");
        }
    }
    // The write-ahead journal rides next to the snapshot; describe it too.
    let jpath = path.with_extension("journal");
    if jpath.exists() {
        match molq_store::inspect_journal(&jpath) {
            Ok(j) => {
                let tail = match &j.defect {
                    Some(defect) => format!(
                        ", CORRUPT tail ({defect}; {} byte(s) drop on restore)",
                        j.salvaged_bytes
                    ),
                    None if j.torn_tail => ", torn tail".to_string(),
                    None => String::new(),
                };
                let _ = writeln!(
                    out,
                    "journal   : {} ({} bytes, epoch {}, {} updates: {} inserts, {} removes{tail})",
                    jpath.display(),
                    j.file_len,
                    j.epoch,
                    j.records,
                    j.inserts,
                    j.removes,
                );
            }
            Err(e) => {
                let _ = writeln!(out, "journal   : {} CORRUPT ({e})", jpath.display());
            }
        }
    }
    Ok(out)
}

fn snapshot_verify(flags: &Flags) -> Result<String, String> {
    let path = snapshot_file_flag(flags)?;
    let s = molq_store::verify_file(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut out = format!(
        "{} OK: {} ({:?}, eps {}, {} sets, {} objects, {} OVRs)\n",
        path.display(),
        s.name,
        s.boundary,
        s.eps,
        s.sets,
        s.objects,
        s.ovrs
    );
    // A journal sidecar must replay onto this base: every record CRC intact,
    // dataset name and epoch matching. A torn trailing record is a valid
    // crash state (the prefix replays; restore truncates the tail), but a
    // *complete* record failing its CRC is damage — restore would salvage
    // the prefix, so verify reports exactly what would be lost.
    let jpath = path.with_extension("journal");
    if jpath.exists() {
        let j =
            molq_store::load_journal(&jpath).map_err(|e| format!("{}: {e}", jpath.display()))?;
        if let Some(defect) = &j.defect {
            return Err(format!(
                "{}: tail corrupt after {} valid record(s) ({defect}); restore would salvage \
                 the prefix and drop {} byte(s)",
                jpath.display(),
                j.records.len(),
                j.salvaged_bytes
            ));
        }
        if j.name != s.name {
            return Err(format!(
                "{}: journal names dataset {:?}, snapshot is {:?}",
                jpath.display(),
                j.name,
                s.name
            ));
        }
        if j.epoch != s.update_epoch {
            let _ = writeln!(
                out,
                "{} STALE: epoch {} vs base {} (ignored on restore)",
                jpath.display(),
                j.epoch,
                s.update_epoch
            );
        } else {
            let _ = writeln!(
                out,
                "{} OK: {} updates at epoch {}{}",
                jpath.display(),
                j.records.len(),
                j.epoch,
                if j.torn_tail {
                    " (torn tail, truncated on restore)"
                } else {
                    ""
                },
            );
        }
    }
    Ok(out)
}

/// The offline live-update command: `molq update <add|remove|compact>`
/// edits a snapshot through the same incremental patch layer the server
/// uses, journaling each change before rewriting nothing — the base file
/// stays untouched until `compact` folds the journal in.
fn update(args: &[String]) -> Result<String, String> {
    let Some(sub) = args.first() else {
        return Err("update needs a subcommand (add, remove, compact)".into());
    };
    let flags = Flags::parse(&args[1..])?;
    match sub.as_str() {
        "add" => update_add(&flags),
        "remove" => update_remove(&flags),
        "compact" => update_compact(&flags),
        other => Err(format!(
            "unknown update subcommand {other:?} (add, remove, compact)"
        )),
    }
}

/// A snapshot opened for offline updates: the base file, its live
/// (journal-replayed) diagram, and the journal opened for appending.
struct OfflineLive {
    path: std::path::PathBuf,
    stored: molq_store::StoredSnapshot,
    live: LiveMovd,
    journal: molq_store::Journal,
    replayed: usize,
    /// A warning line when the journal's defective tail was salvaged away
    /// (empty when the journal was clean).
    salvage_note: String,
}

fn open_live(flags: &Flags) -> Result<OfflineLive, String> {
    use molq_server::engine::{apply_one, update_of};

    let dir = std::path::PathBuf::from(flags.get("dir").ok_or("--dir is required")?);
    let name = flags.get("name").unwrap_or("default");
    let path = dir.join(format!("{name}.molq"));
    let stored = molq_store::StoredSnapshot::load_file(&path)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    if stored.build.mode.is_approx() {
        return Err(format!(
            "{}: snapshot was built in approximate mode (ε = {}); the incremental patch \
             layer is exact-only — rebuild without --epsilon to edit it",
            path.display(),
            stored.build.mode.epsilon()
        ));
    }
    let inferred = stored.explicit_bounds.is_none();
    let exec = exec_flag(flags, ExecConfig::default())?;
    let index = MovdIndex::from_arena(stored.movd.clone(), stored.grid.clone())?;
    let mut live = LiveMovd::from_index(stored.sets.clone(), index, stored.boundary, exec)
        .map_err(|e| e.to_string())?;

    // Replay what the journal already holds so the new update lands on top
    // of the full history (exactly what the server replays on restart).
    let jpath = molq_store::journal_path(&dir, &stored.name);
    let mut replayed = 0;
    let mut salvage_note = String::new();
    if jpath.exists() {
        let j =
            molq_store::load_journal(&jpath).map_err(|e| format!("{}: {e}", jpath.display()))?;
        if j.name != stored.name || j.epoch != stored.update_epoch {
            return Err(format!(
                "{}: journal is stale (dataset {:?} epoch {}, base {:?} epoch {})",
                jpath.display(),
                j.name,
                j.epoch,
                stored.name,
                stored.update_epoch
            ));
        }
        if let Some(defect) = &j.defect {
            // Same recovery the server runs: replay the valid prefix; the
            // reopen below truncates the defective tail.
            salvage_note = format!(
                "warning: {}: tail corrupt ({defect}); salvaged the {}-record prefix, \
                 dropping {} byte(s)\n",
                jpath.display(),
                j.records.len(),
                j.salvaged_bytes
            );
        }
        for record in &j.records {
            apply_one(&mut live, inferred, &update_of(record))
                .map_err(|e| format!("{}: replay failed: {e}", jpath.display()))?;
            replayed += 1;
        }
    }
    let journal = molq_store::Journal::open_or_create(&jpath, &stored.name, stored.update_epoch)
        .map_err(|e| format!("{}: {e}", jpath.display()))?;
    Ok(OfflineLive {
        path,
        stored,
        live,
        journal,
        replayed,
        salvage_note,
    })
}

/// `--set` resolved against the loaded sets: by name first, then as an
/// index.
fn set_flag(sets: &[ObjectSet], flags: &Flags) -> Result<usize, String> {
    let raw = flags.get("set").ok_or("--set is required")?;
    if let Some(i) = sets.iter().position(|s| s.name == raw) {
        return Ok(i);
    }
    raw.parse::<usize>()
        .ok()
        .filter(|i| *i < sets.len())
        .ok_or_else(|| format!("--set: {raw:?} names no object set (and is not a valid index)"))
}

fn require_f64(flags: &Flags, key: &str) -> Result<f64, String> {
    flags
        .get(key)
        .ok_or_else(|| format!("--{key} is required"))?
        .parse()
        .map_err(|e| format!("--{key}: {e}"))
}

/// Applies one update to an opened snapshot: journal append (durable) after
/// the in-memory patch succeeds, then a one-line report.
fn apply_offline(mut st: OfflineLive, upd: &Update) -> Result<String, String> {
    use molq_server::engine::{apply_one, record_of};

    let inferred = st.stored.explicit_bounds.is_none();
    let (stats, full) =
        apply_one(&mut st.live, inferred, upd).map_err(|e| format!("update rejected: {e}"))?;
    st.journal
        .append(&record_of(upd))
        .map_err(|e| format!("{}: {e}", st.journal.path().display()))?;
    let objects: usize = st.live.sets().iter().map(|s| s.objects.len()).sum();
    Ok(format!(
        "{}{} {} (journal {} + this; {} objects now, {}, {:?})\n",
        st.salvage_note,
        match upd {
            Update::Insert { .. } => "inserted into",
            Update::Remove { .. } => "removed from",
        },
        st.path.display(),
        st.replayed,
        objects,
        if full {
            "full rebuild (bounds moved)".to_string()
        } else {
            format!(
                "{} cells re-clipped, {} OVRs re-derived",
                stats.cells_reclipped, stats.ovrs_rederived
            )
        },
        stats.wall,
    ))
}

fn update_add(flags: &Flags) -> Result<String, String> {
    let st = open_live(flags)?;
    let set = set_flag(st.live.sets(), flags)?;
    let object = SpatialObject {
        loc: molq_geom::Point::new(require_f64(flags, "x")?, require_f64(flags, "y")?),
        w_t: flags.parse_f64("wt", 1.0)?,
        w_o: flags.parse_f64("wo", 1.0)?,
    };
    apply_offline(st, &Update::Insert { set, object })
}

fn update_remove(flags: &Flags) -> Result<String, String> {
    let st = open_live(flags)?;
    let set = set_flag(st.live.sets(), flags)?;
    let index = flags
        .get("index")
        .ok_or("--index is required")?
        .parse::<usize>()
        .map_err(|e| format!("--index: {e}"))?;
    apply_offline(st, &Update::Remove { set, index })
}

/// Folds the journal into a new base file at epoch + 1 and resets the
/// journal, exactly like the server's compaction.
fn update_compact(flags: &Flags) -> Result<String, String> {
    let mut st = open_live(flags)?;
    let new_epoch = st.stored.update_epoch + 1;
    let compacted = molq_store::StoredSnapshot {
        name: st.stored.name.clone(),
        boundary: st.stored.boundary,
        eps: st.stored.eps,
        explicit_bounds: st.stored.explicit_bounds,
        fingerprint: st.stored.fingerprint.clone(),
        sets: st.live.sets().to_vec(),
        movd: st.live.index().arena().clone(),
        grid: st.live.index().grid().clone(),
        update_epoch: new_epoch,
        build: st.stored.build,
    };
    compacted
        .save_file(&st.path)
        .map_err(|e| format!("{}: {e}", st.path.display()))?;
    st.journal
        .reset(new_epoch)
        .map_err(|e| format!("{}: {e}", st.journal.path().display()))?;
    Ok(format!(
        "{}compacted {} journal updates into {} (epoch {new_epoch}); journal reset\n",
        st.salvage_note,
        st.replayed,
        st.path.display(),
    ))
}

fn generate(flags: &Flags) -> Result<String, String> {
    let layer = parse_layer(flags.get("layer").ok_or("--layer is required")?)?;
    let n = flags.parse_usize("n", 1000)?;
    let seed = flags.parse_usize("seed", 2014)? as u64;
    let w_t = flags.parse_f64("wt", 1.0)?;
    let bounds = match flags.get("bounds") {
        Some(b) => parse_bounds(b)?,
        None => Mbr::new(0.0, 0.0, 1_000_000.0, 1_000_000.0),
    };
    let out = flags.get("out").ok_or("--out is required")?;
    let (set, weights) = match flags.get("zipf") {
        Some(raw) => {
            let s: f64 = raw
                .parse()
                .map_err(|e| format!("--zipf must be an f64: {e}"))?;
            if !s.is_finite() || s < 0.0 {
                return Err("--zipf must be a finite non-negative exponent".into());
            }
            (
                molq_datagen::layer_object_set_zipf(layer, n, w_t, bounds, seed, s),
                format!("zipf(s = {s})"),
            )
        }
        None => (
            layer_object_set(layer, n, w_t, bounds, seed),
            "uniform".to_string(),
        ),
    };
    let mut f = File::create(out).map_err(|e| format!("{out}: {e}"))?;
    write_csv(&set, &mut f).map_err(|e| format!("{out}: {e}"))?;
    Ok(format!(
        "wrote {n} {} objects (w_t = {w_t}, w_o {weights}, seed {seed}) to {out}\n",
        layer.code()
    ))
}

fn solve(flags: &Flags) -> Result<String, String> {
    let sets = load_sets(flags)?;
    let bounds = bounds_for(flags, &sets)?;
    let eps = flags.parse_f64("eps", 1e-3)?;
    let algo = flags.get("algo").unwrap_or("rrb");
    let exec = exec_flag(flags, ExecConfig::default())?;
    let query = MolqQuery::new(sets, bounds).with_rule(StoppingRule::Either(eps, 100_000));

    let mut out = String::new();
    let t = std::time::Instant::now();
    let (loc, cost, extra) = match algo {
        "ssc" => {
            let a = solve_ssc_with(&query, exec).map_err(|e| e.to_string())?;
            (
                a.location,
                a.cost,
                format!("{} combinations", a.combinations),
            )
        }
        "rrb" => {
            let a = solve_movd_with(&query, Boundary::Rrb, exec).map_err(|e| e.to_string())?;
            (a.location, a.cost, format!("{} OVRs", a.ovr_count))
        }
        "mbrb" => {
            let a = solve_movd_with(&query, Boundary::Mbrb, exec).map_err(|e| e.to_string())?;
            (a.location, a.cost, format!("{} OVRs", a.ovr_count))
        }
        "pruned" => {
            let a = solve_pruned(&query, Boundary::Rrb).map_err(|e| e.to_string())?;
            (
                a.answer.location,
                a.answer.cost,
                format!(
                    "{} OVRs after pruning {}",
                    a.prune.final_ovrs, a.prune.pruned_ovrs
                ),
            )
        }
        "tiled" => {
            let tiles = flags.parse_usize("tiles", 4)?;
            let a = solve_tiled(&query, Boundary::Rrb, tiles).map_err(|e| e.to_string())?;
            (
                a.location,
                a.cost,
                format!("{} tiles, peak tile {} B", a.tiles, a.peak_tile_bytes),
            )
        }
        "topk" => {
            let k = flags.parse_usize("k", 5)?;
            let a = solve_topk_with(&query, Boundary::Rrb, k, exec).map_err(|e| e.to_string())?;
            let mut ranked = String::new();
            for (rank, c) in a.candidates.iter().enumerate().skip(1) {
                let _ = write!(
                    ranked,
                    "\n            #{}: ({:.3}, {:.3}) cost {:.3}",
                    rank + 1,
                    c.location.x,
                    c.location.y,
                    c.cost
                );
            }
            let first = &a.candidates[0];
            (
                first.location,
                first.cost,
                format!("{} candidates{ranked}", a.candidates.len()),
            )
        }
        other => return Err(format!("unknown --algo {other:?}")),
    };
    let dt = t.elapsed();
    let _ = writeln!(out, "algorithm : {algo}");
    let _ = writeln!(out, "location  : ({:.3}, {:.3})", loc.x, loc.y);
    let _ = writeln!(out, "cost      : {cost:.3}");
    let _ = writeln!(out, "detail    : {extra}");
    let _ = writeln!(out, "elapsed   : {dt:?}");
    Ok(out)
}

/// Set by the SIGINT handler; polled by the serve loop.
static SERVE_STOP: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

#[cfg(unix)]
fn install_sigint_handler() {
    use std::sync::atomic::Ordering;
    extern "C" fn on_sigint(_signum: i32) {
        SERVE_STOP.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    unsafe {
        signal(SIGINT, on_sigint as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_sigint_handler() {}

fn serve(flags: &Flags) -> Result<String, String> {
    use molq_server::engine::DatasetSpec;
    use molq_server::http::{start, ServerConfig};
    use molq_server::service::{Service, ServiceConfig};
    use std::sync::atomic::Ordering;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let inputs = flags.get_all("input");
    if inputs.is_empty() {
        return Err("at least one --input CSV is required".into());
    }
    let boundary = match flags.get("algo").unwrap_or("rrb") {
        "rrb" => Boundary::Rrb,
        "mbrb" => Boundary::Mbrb,
        other => return Err(format!("unknown --algo {other:?} (rrb, mbrb)")),
    };
    let port: u16 = match flags.get("port") {
        None => 8080,
        Some(v) => v.parse().map_err(|e| format!("--port: {e}"))?,
    };
    let host = flags.get("host").unwrap_or("127.0.0.1").to_string();
    let workers = flags.parse_usize("workers", 4)?;
    let name = flags.get("name").unwrap_or("default").to_string();
    let eps = flags.parse_f64("eps", 1e-3)?;
    let bounds = flags.get("bounds").map(parse_bounds).transpose()?;
    let shutdown_after = flags
        .get("shutdown-after")
        .map(|v| {
            v.parse::<f64>()
                .map_err(|e| format!("--shutdown-after: {e}"))
        })
        .transpose()?;
    let request_timeout = flags.parse_f64("request-timeout", 10.0)?;
    if !request_timeout.is_finite() || request_timeout <= 0.0 {
        return Err("--request-timeout must be a positive number of seconds".into());
    }
    let transport = match flags.get("transport") {
        // No flag: MOLQ_TRANSPORT, else the portable pool default.
        None => molq_server::http::Transport::from_env().unwrap_or_default(),
        Some(v) => molq_server::http::Transport::parse(v)
            .ok_or_else(|| format!("--transport: unknown transport {v:?} (pool, epoll)"))?,
    };
    let shards = flags.parse_usize("shards", 1)?;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    // Default: MOLQ_THREADS, else all cores (ServiceConfig::default).
    let exec = exec_flag(flags, ExecConfig::new(ServiceConfig::default().threads))?;

    let spec = DatasetSpec {
        name: name.clone(),
        paths: inputs.iter().map(std::path::PathBuf::from).collect(),
        boundary,
        bounds,
        eps,
        build: build_mode_flag(flags)?,
        snapshot_dir: flags.get("snapshot-dir").map(std::path::PathBuf::from),
    };
    // Faults from MOLQ_FAULTS arm before serving starts, so chaos drills can
    // target the whole request lifecycle (see molq_server::fault).
    if let Some(spec) =
        molq_server::fault::arm_from_env().map_err(|e| format!("MOLQ_FAULTS: {e}"))?
    {
        eprintln!("molq serve: fault injection armed: {spec}");
    }

    let engines = molq_server::ShardedEngine::new(shards);
    // The initial build runs on the same pool width the service will use,
    // on the shard the rendezvous routing assigns this dataset.
    engines.set_exec_config(exec);
    let build_start = Instant::now();
    let (snapshot, outcome) = engines.engine_for(&name).load_traced(spec)?;
    let build_time = build_start.elapsed();
    let shard_of = engines.shard_of(&name);
    let service = Arc::new(Service::sharded(
        engines,
        ServiceConfig {
            request_timeout: Duration::from_secs_f64(request_timeout),
            threads: exec.threads,
        },
    ));

    let handle = start(
        Arc::clone(&service),
        ServerConfig {
            host,
            port,
            workers,
            transport,
            ..ServerConfig::default()
        },
    )
    .map_err(|e| format!("bind: {e}"))?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "dataset   : {name} ({} sets, {} objects, {} OVRs, {} in {build_time:?})",
        snapshot.set_count(),
        snapshot.object_count(),
        snapshot.index.len(),
        match outcome {
            molq_server::engine::LoadOutcome::BuiltFromCsv => "built",
            molq_server::engine::LoadOutcome::LoadedFromSnapshot => "restored from snapshot",
        },
    );
    let _ = writeln!(out, "threads   : {}", exec.threads);
    let _ = writeln!(out, "transport : {}", transport.name());
    if shards > 1 {
        let _ = writeln!(out, "shards    : {shards} ({name} on shard {shard_of})");
    }
    let _ = writeln!(out, "address   : http://{}", handle.addr());
    // The report so far is only returned when the server exits, so print the
    // serving banner immediately for interactive use.
    eprint!("{out}");
    eprintln!("press Ctrl-C to stop");

    SERVE_STOP.store(false, Ordering::SeqCst);
    install_sigint_handler();
    let deadline = shutdown_after.map(|secs| Instant::now() + Duration::from_secs_f64(secs));
    while !SERVE_STOP.load(Ordering::SeqCst) && deadline.map_or(true, |d| Instant::now() < d) {
        std::thread::sleep(Duration::from_millis(50));
    }
    handle.shutdown();

    let served: u64 = service
        .metrics()
        .endpoints()
        .iter()
        .map(|(_, m)| m.requests())
        .sum();
    let _ = writeln!(out, "served    : {served} requests");
    Ok(out)
}

fn render(flags: &Flags) -> Result<String, String> {
    let sets = load_sets(flags)?;
    let bounds = bounds_for(flags, &sets)?;
    let width = flags.parse_usize("width", 800)?;
    let mode = flags.get("mode").unwrap_or("rrb");
    let out_path = flags.get("out").ok_or("--out is required")?;

    let svg = match mode {
        "voronoi" => {
            let sites: Vec<_> = sets[0].objects.iter().map(|o| o.loc).collect();
            let vd =
                molq_voronoi::OrdinaryVoronoi::build(&sites, bounds).map_err(|e| e.to_string())?;
            molq_viz::render_voronoi(&vd, width)
        }
        "rrb" | "mbrb" => {
            let boundary = if mode == "rrb" {
                Boundary::Rrb
            } else {
                Boundary::Mbrb
            };
            let movd = Movd::overlap_all(&sets, bounds, boundary).map_err(|e| e.to_string())?;
            molq_viz::render_movd(&movd, width)
        }
        other => return Err(format!("unknown --mode {other:?}")),
    };
    let mut f = File::create(out_path).map_err(|e| format!("{out_path}: {e}"))?;
    f.write_all(svg.as_bytes())
        .map_err(|e| format!("{out_path}: {e}"))?;
    Ok(format!("wrote {out_path} ({} bytes)\n", svg.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn rejects_unknown_commands_and_flags() {
        assert!(run(&argv("frobnicate")).is_err());
        assert!(run(&argv("solve nope")).is_err());
        assert!(run(&argv("solve --algo")).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn flag_errors_name_the_offender() {
        assert_eq!(
            run(&argv("solve --algo")).unwrap_err(),
            "flag --algo needs a value"
        );
        assert_eq!(
            run(&argv("solve positional")).unwrap_err(),
            "expected a --flag, got \"positional\""
        );
        assert!(run(&argv("generate --n ten --layer STM --out /tmp/x.csv"))
            .unwrap_err()
            .contains("--n"));
    }

    #[test]
    fn generate_zipf_writes_skewed_object_weights() {
        let dir = std::env::temp_dir().join("molq_cli_zipf");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("z.csv");
        for bad in ["nan", "-1", "abc"] {
            assert!(run(&argv(&format!(
                "generate --layer STM --n 10 --zipf {bad} --out {}",
                out.display()
            )))
            .is_err());
        }
        let msg = run(&argv(&format!(
            "generate --layer STM --n 200 --seed 4 --zipf 1.0 --out {} --bounds 0,0,100,100",
            out.display()
        )))
        .unwrap();
        assert!(msg.contains("zipf(s = 1)"), "{msg}");
        let set = read_csv("STM", File::open(&out).unwrap()).unwrap();
        assert_eq!(set.len(), 200);
        assert!(!set.has_uniform_object_weights());
        let mean = set.objects.iter().map(|o| o.w_o).sum::<f64>() / 200.0;
        assert!((mean - 1.0).abs() < 1e-9, "mean {mean}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn usage_covers_every_command() {
        let text = usage();
        for cmd in ["generate", "solve", "render", "serve", "snapshot", "update"] {
            assert!(text.contains(cmd), "usage misses {cmd}");
        }
        for flag in [
            "--input",
            "--algo",
            "--port",
            "--shutdown-after",
            "--snapshot-dir",
            "--request-timeout",
            "--threads",
            "--dir",
            "--file",
            "--set",
            "--index",
        ] {
            assert!(text.contains(flag), "usage misses {flag}");
        }
        assert!(text.contains("MOLQ_FAULTS"), "usage misses MOLQ_FAULTS");
        assert!(text.contains("journal"), "usage misses the journal");
    }

    #[test]
    fn snapshot_subcommands_validate_flags() {
        assert!(run(&argv("snapshot")).unwrap_err().contains("subcommand"));
        assert!(run(&argv("snapshot frobnicate"))
            .unwrap_err()
            .contains("frobnicate"));
        assert!(run(&argv("snapshot build --dir /tmp/x"))
            .unwrap_err()
            .contains("--input"));
        assert!(run(&argv("snapshot build --input a.csv"))
            .unwrap_err()
            .contains("--dir"));
        assert!(run(&argv("snapshot inspect"))
            .unwrap_err()
            .contains("--file"));
        assert!(run(&argv("snapshot verify"))
            .unwrap_err()
            .contains("--file"));
        // A missing snapshot file is an error, not a panic.
        assert!(run(&argv("snapshot verify --file /nonexistent/d.molq")).is_err());
    }

    #[test]
    fn update_subcommands_validate_flags() {
        assert!(run(&argv("update")).unwrap_err().contains("subcommand"));
        assert!(run(&argv("update frobnicate"))
            .unwrap_err()
            .contains("frobnicate"));
        assert!(run(&argv("update add --set a --x 1 --y 2"))
            .unwrap_err()
            .contains("--dir"));
        assert!(run(&argv("update compact")).unwrap_err().contains("--dir"));
        // A missing base snapshot is an error, not a panic.
        assert!(run(&argv("update add --dir /nonexistent --set a --x 1 --y 2")).is_err());
    }

    #[test]
    fn update_add_remove_compact_roundtrip() {
        let dir = std::env::temp_dir().join("molq_cli_update");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.csv");
        let b = dir.join("b.csv");
        for (path, layer, seed) in [(&a, "STM", 41), (&b, "CH", 42)] {
            run(&argv(&format!(
                "generate --layer {layer} --n 10 --seed {seed} --out {} --bounds 0,0,50,50",
                path.display()
            )))
            .unwrap();
        }
        run(&argv(&format!(
            "snapshot build --input {} --input {} --dir {} --name d --bounds 0,0,50,50",
            a.display(),
            b.display(),
            dir.display()
        )))
        .unwrap();
        let file = dir.join("d.molq");
        let journal = dir.join("d.journal");

        // Two inserts and one remove, each journaled.
        let added = run(&argv(&format!(
            "update add --dir {} --name d --set a --x 12.5 --y 17.25 --wo 2",
            dir.display()
        )))
        .unwrap();
        assert!(added.contains("inserted"), "{added}");
        assert!(added.contains("21 objects now"), "{added}");
        run(&argv(&format!(
            "update add --dir {} --name d --set b --x 31.5 --y 8.75",
            dir.display()
        )))
        .unwrap();
        let removed = run(&argv(&format!(
            "update remove --dir {} --name d --set b --index 0",
            dir.display()
        )))
        .unwrap();
        assert!(removed.contains("removed"), "{removed}");
        assert!(journal.exists());

        // inspect/verify describe the journal sidecar.
        let inspect = run(&argv(&format!(
            "snapshot inspect --file {}",
            file.display()
        )))
        .unwrap();
        assert!(
            inspect.contains("3 updates: 2 inserts, 1 removes"),
            "{inspect}"
        );
        assert!(inspect.contains("epoch     : 0"), "{inspect}");
        let verify = run(&argv(&format!("snapshot verify --file {}", file.display()))).unwrap();
        assert!(verify.contains("3 updates at epoch 0"), "{verify}");

        // A rejected update (bad index) leaves the journal as-is.
        assert!(run(&argv(&format!(
            "update remove --dir {} --name d --set a --index 999",
            dir.display()
        )))
        .unwrap_err()
        .contains("rejected"));

        // The patched dataset is byte-identical to a from-scratch build over
        // the updated objects: replay journal onto the base and compare with
        // overlap_all over the same sets.
        {
            use molq_server::engine::{apply_one, update_of};
            let stored = molq_store::StoredSnapshot::load_file(&file).unwrap();
            let index = MovdIndex::from_arena(stored.movd.clone(), stored.grid.clone()).unwrap();
            let mut live = LiveMovd::from_index(
                stored.sets.clone(),
                index,
                stored.boundary,
                ExecConfig::serial(),
            )
            .unwrap();
            let j = molq_store::load_journal(&journal).unwrap();
            assert_eq!(j.records.len(), 3);
            for r in &j.records {
                apply_one(&mut live, false, &update_of(r)).unwrap();
            }
            let fresh = Movd::overlap_all_with(
                live.sets(),
                live.bounds(),
                stored.boundary,
                ExecConfig::serial(),
            )
            .unwrap();
            assert!(movd_bits_eq(live.index().movd(), &fresh));
        }

        // Compaction folds the journal into a new base at epoch 1 and
        // resets the journal; inspect reflects both.
        let compacted = run(&argv(&format!(
            "update compact --dir {} --name d",
            dir.display()
        )))
        .unwrap();
        assert!(compacted.contains("compacted 3"), "{compacted}");
        let inspect = run(&argv(&format!(
            "snapshot inspect --file {}",
            file.display()
        )))
        .unwrap();
        assert!(inspect.contains("epoch     : 1"), "{inspect}");
        assert!(inspect.contains("EPOCH"), "{inspect}");
        assert!(
            inspect.contains("0 updates: 0 inserts, 0 removes"),
            "{inspect}"
        );
        let verify = run(&argv(&format!("snapshot verify --file {}", file.display()))).unwrap();
        assert!(verify.contains("0 updates at epoch 1"), "{verify}");

        // Further updates land in the fresh journal at the new epoch.
        run(&argv(&format!(
            "update add --dir {} --name d --set a --x 44.5 --y 3.25",
            dir.display()
        )))
        .unwrap();
        let verify = run(&argv(&format!("snapshot verify --file {}", file.display()))).unwrap();
        assert!(verify.contains("1 updates at epoch 1"), "{verify}");

        // A bit flip inside a journal record payload fails verify but not
        // inspect (which flags the damage instead).
        let mut bytes = std::fs::read(&journal).unwrap();
        let at = bytes.len() - 20; // inside the one record's payload
        bytes[at] ^= 0x01;
        std::fs::write(&journal, &bytes).unwrap();
        let err = run(&argv(&format!("snapshot verify --file {}", file.display()))).unwrap_err();
        assert!(err.contains("checksum"), "{err}");
        let inspect = run(&argv(&format!(
            "snapshot inspect --file {}",
            file.display()
        )))
        .unwrap();
        assert!(inspect.contains("CORRUPT"), "{inspect}");
    }

    #[test]
    fn snapshot_build_verify_inspect_roundtrip() {
        let dir = std::env::temp_dir().join("molq_cli_snapshot");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.csv");
        let b = dir.join("b.csv");
        for (path, layer, seed) in [(&a, "STM", 11), (&b, "CH", 12)] {
            run(&argv(&format!(
                "generate --layer {layer} --n 12 --seed {seed} --out {} --bounds 0,0,40,40",
                path.display()
            )))
            .unwrap();
        }
        let build = |name: &str| {
            run(&argv(&format!(
                "snapshot build --input {} --input {} --dir {} --name {name} \
                 --bounds 0,0,40,40",
                a.display(),
                b.display(),
                dir.display()
            )))
            .unwrap()
        };
        let report = build("d");
        assert!(report.starts_with("built"), "{report}");
        assert!(report.contains("2 sets, 24 objects"), "{report}");
        // A rebuild over unchanged sources is a no-op.
        let again = build("d");
        assert!(again.contains("already up to date"), "{again}");

        let file = dir.join("d.molq");
        let verify = run(&argv(&format!("snapshot verify --file {}", file.display()))).unwrap();
        assert!(verify.contains("OK"), "{verify}");
        assert!(verify.contains("24 objects"), "{verify}");

        let inspect = run(&argv(&format!(
            "snapshot inspect --file {}",
            file.display()
        )))
        .unwrap();
        let version_line = format!("version   : {}", molq_store::FORMAT_VERSION);
        for want in [
            version_line.as_str(),
            "META",
            "SETS",
            "MOVD",
            "GRID",
            "a.csv",
        ] {
            assert!(inspect.contains(want), "inspect misses {want}:\n{inspect}");
        }

        // Corruption: verify fails with the checksum error; inspect still
        // describes the file and flags the damaged section.
        let mut bytes = std::fs::read(&file).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&file, &bytes).unwrap();
        let err = run(&argv(&format!("snapshot verify --file {}", file.display()))).unwrap_err();
        assert!(
            err.contains("checksum") || err.contains("malformed") || err.contains("truncated"),
            "{err}"
        );
        let inspect = run(&argv(&format!(
            "snapshot inspect --file {}",
            file.display()
        )))
        .unwrap();
        assert!(inspect.contains("CORRUPT"), "{inspect}");
    }

    #[test]
    fn serve_restores_from_snapshot_dir() {
        let dir = std::env::temp_dir().join("molq_cli_serve_snap");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.csv");
        run(&argv(&format!(
            "generate --layer STM --n 14 --seed 21 --out {} --bounds 0,0,30,30",
            a.display()
        )))
        .unwrap();
        let serve = |tag: &str| {
            run(&argv(&format!(
                "serve --input {} --bounds 0,0,30,30 --port 0 --workers 1 \
                 --shutdown-after 0.05 --snapshot-dir {}",
                a.display(),
                dir.display()
            )))
            .unwrap_or_else(|e| panic!("{tag}: {e}"))
        };
        let cold = serve("cold");
        assert!(cold.contains("built in"), "{cold}");
        assert!(dir.join("default.molq").exists());
        let warm = serve("warm");
        assert!(warm.contains("restored from snapshot in"), "{warm}");
    }

    #[test]
    fn serve_validates_flags_before_binding() {
        assert!(run(&argv("serve")).unwrap_err().contains("--input"));
        assert!(run(&argv("serve --input x.csv --algo ssc"))
            .unwrap_err()
            .contains("--algo"));
        assert!(run(&argv("serve --input x.csv --request-timeout 0"))
            .unwrap_err()
            .contains("--request-timeout"));
        assert!(run(&argv("serve --input x.csv --request-timeout nan"))
            .unwrap_err()
            .contains("--request-timeout"));
        assert!(run(&argv("serve --input x.csv --port notaport"))
            .unwrap_err()
            .contains("--port"));
        assert!(run(&argv("serve --input x.csv --transport carrier-pigeon"))
            .unwrap_err()
            .contains("--transport"));
        assert!(run(&argv("serve --input x.csv --shards 0"))
            .unwrap_err()
            .contains("--shards"));
        // A missing input file fails at load, not with a panic.
        assert!(run(&argv("serve --input /nonexistent/layer.csv --port 0")).is_err());
    }

    #[test]
    fn serve_starts_and_shuts_down() {
        let dir = std::env::temp_dir().join("molq_cli_serve");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.csv");
        let b = dir.join("b.csv");
        for (path, layer, seed) in [(&a, "STM", 4), (&b, "CH", 5)] {
            run(&argv(&format!(
                "generate --layer {layer} --n 15 --seed {seed} --out {} --bounds 0,0,60,60",
                path.display()
            )))
            .unwrap();
        }
        let report = run(&argv(&format!(
            "serve --input {} --input {} --bounds 0,0,60,60 --port 0 --workers 2 \
             --shutdown-after 0.2",
            a.display(),
            b.display()
        )))
        .unwrap();
        assert!(report.contains("2 sets, 30 objects"), "{report}");
        assert!(report.contains("transport : pool"), "{report}");
        assert!(report.contains("address   : http://127.0.0.1:"), "{report}");
        assert!(report.contains("served    : 0 requests"), "{report}");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn serve_runs_the_epoll_transport_with_shards() {
        let dir = std::env::temp_dir().join("molq_cli_serve_epoll");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.csv");
        run(&argv(&format!(
            "generate --layer STM --n 12 --seed 6 --out {} --bounds 0,0,40,40",
            a.display()
        )))
        .unwrap();
        let report = run(&argv(&format!(
            "serve --input {} --bounds 0,0,40,40 --port 0 --workers 2 \
             --transport epoll --shards 3 --shutdown-after 0.2",
            a.display()
        )))
        .unwrap();
        assert!(report.contains("transport : epoll"), "{report}");
        assert!(
            report.contains("shards    : 3 (default on shard"),
            "{report}"
        );
    }

    #[test]
    fn generate_then_solve_roundtrip() {
        let dir = std::env::temp_dir().join("molq_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.csv");
        let b = dir.join("b.csv");
        run(&argv(&format!(
            "generate --layer STM --n 20 --seed 1 --out {} --bounds 0,0,100,100",
            a.display()
        )))
        .unwrap();
        run(&argv(&format!(
            "generate --layer CH --n 25 --seed 2 --out {} --bounds 0,0,100,100",
            b.display()
        )))
        .unwrap();
        for algo in ["ssc", "rrb", "mbrb", "pruned", "tiled"] {
            let report = run(&argv(&format!(
                "solve --algo {algo} --input {} --input {} --bounds 0,0,100,100",
                a.display(),
                b.display()
            )))
            .unwrap();
            assert!(report.contains("location"), "{algo}: {report}");
        }
        // Top-k lists additional ranked candidates.
        let report = run(&argv(&format!(
            "solve --algo topk --k 3 --input {} --input {} --bounds 0,0,100,100",
            a.display(),
            b.display()
        )))
        .unwrap();
        assert!(report.contains("candidates"), "{report}");
        assert!(report.contains("#2"), "{report}");
    }

    #[test]
    fn solutions_agree_through_the_cli() {
        let dir = std::env::temp_dir().join("molq_cli_agree");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.csv");
        let b = dir.join("b.csv");
        for (path, layer, seed) in [(&a, "STM", 7), (&b, "SCH", 8)] {
            run(&argv(&format!(
                "generate --layer {layer} --n 15 --seed {seed} --out {} --bounds 0,0,50,50",
                path.display()
            )))
            .unwrap();
        }
        let cost_of = |algo: &str| -> f64 {
            let report = run(&argv(&format!(
                "solve --algo {algo} --eps 1e-9 --input {} --input {} --bounds 0,0,50,50",
                a.display(),
                b.display()
            )))
            .unwrap();
            report
                .lines()
                .find(|l| l.starts_with("cost"))
                .and_then(|l| l.split(':').nth(1))
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        let ssc = cost_of("ssc");
        for algo in ["rrb", "mbrb", "pruned", "tiled"] {
            let c = cost_of(algo);
            assert!((ssc - c).abs() < 1e-3 * ssc, "{algo}: {c} vs ssc {ssc}");
        }
    }

    #[test]
    fn solve_reports_identical_answers_at_any_thread_count() {
        let dir = std::env::temp_dir().join("molq_cli_threads");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.csv");
        let b = dir.join("b.csv");
        for (path, layer, seed) in [(&a, "STM", 17), (&b, "CH", 18)] {
            run(&argv(&format!(
                "generate --layer {layer} --n 18 --seed {seed} --out {} --bounds 0,0,80,80",
                path.display()
            )))
            .unwrap();
        }
        for algo in ["rrb", "mbrb", "topk", "ssc"] {
            let answer_of = |threads: usize| -> Vec<String> {
                run(&argv(&format!(
                    "solve --algo {algo} --threads {threads} --input {} --input {} \
                     --bounds 0,0,80,80",
                    a.display(),
                    b.display()
                )))
                .unwrap()
                .lines()
                .filter(|l| l.starts_with("location") || l.starts_with("cost"))
                .map(String::from)
                .collect()
            };
            let serial = answer_of(1);
            assert_eq!(serial.len(), 2, "{algo}");
            assert_eq!(serial, answer_of(2), "{algo}");
            assert_eq!(serial, answer_of(8), "{algo}");
        }
        // Malformed thread counts are flag errors, not panics.
        for bad in ["0", "-2", "many"] {
            let err = run(&argv(&format!(
                "solve --threads {bad} --input {}",
                a.display()
            )))
            .unwrap_err();
            assert!(err.contains("--threads"), "{bad}: {err}");
        }
        assert!(run(&argv("serve --input x.csv --threads 0"))
            .unwrap_err()
            .contains("--threads"));
    }

    #[test]
    fn render_produces_svg() {
        let dir = std::env::temp_dir().join("molq_cli_render");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.csv");
        let svg = dir.join("out.svg");
        run(&argv(&format!(
            "generate --layer PPL --n 12 --seed 3 --out {} --bounds 0,0,10,10",
            a.display()
        )))
        .unwrap();
        for mode in ["voronoi", "rrb", "mbrb"] {
            run(&argv(&format!(
                "render --mode {mode} --input {} --out {} --bounds 0,0,10,10",
                a.display(),
                svg.display()
            )))
            .unwrap();
            let content = std::fs::read_to_string(&svg).unwrap();
            assert!(content.starts_with("<svg"), "{mode}");
        }
    }

    #[test]
    fn bounds_parsing() {
        assert!(parse_bounds("0,0,10,10").is_ok());
        assert!(parse_bounds("10,0,0,10").is_err());
        assert!(parse_bounds("1,2,3").is_err());
        assert!(parse_bounds("a,b,c,d").is_err());
    }
}
