//! The `kill -9` process drill: a real `molq serve` process takes
//! acknowledged live updates, dies by SIGKILL with one more update still
//! in flight, and a restarted process must recover every acknowledged
//! update — the in-flight one may or may not have reached the journal, so
//! the recovered count is allowed to land on either side of it.
//!
//! This is the end-to-end companion to the in-process crash-point
//! enumeration in `molq-store`: same invariant, but with an actual
//! process boundary, real files, and real fsyncs.

#![cfg(unix)]

use molq_server::Client;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// Starts `molq serve` against `csv` with `snap` as the snapshot dir and
/// returns the child plus the bound address parsed from the banner.
fn spawn_serve(csv: &std::path::Path, snap: &std::path::Path) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_molq"))
        .args([
            "serve",
            "--input",
            csv.to_str().unwrap(),
            "--bounds",
            "0,0,100,100",
            "--port",
            "0",
            "--workers",
            "2",
            "--snapshot-dir",
            snap.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn molq serve");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut lines = BufReader::new(stderr).lines();
    let addr = loop {
        let line = match lines.next() {
            Some(Ok(line)) => line,
            other => {
                let _ = child.kill();
                panic!("serve exited before printing its address: {other:?}");
            }
        };
        if let Some(rest) = line.split("http://").nth(1) {
            break rest.trim().parse::<SocketAddr>().expect("bind address");
        }
    };
    // Keep draining so the child never blocks on a full stderr pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

/// Inserts one object and returns the server's post-update object count.
fn insert(client: &mut Client, i: usize) -> usize {
    let target = format!(
        "/datasets/default/objects?set=0&x={}&y={}",
        2.125 + i as f64 * 3.5,
        91.375 - i as f64 * 2.25,
    );
    let resp = client.post(&target).expect("insert");
    assert_eq!(resp.status, 200, "insert {i}: {:?}", resp.body);
    resp.body
        .get("objects")
        .and_then(|j| j.as_u64())
        .expect("objects") as usize
}

#[test]
fn kill_nine_preserves_every_acknowledged_update() {
    let dir = std::env::temp_dir().join(format!("molq_crash_drill_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("stm.csv");
    let snap = dir.join("snap");
    let gen = Command::new(env!("CARGO_BIN_EXE_molq"))
        .args([
            "generate",
            "--layer",
            "STM",
            "--n",
            "20",
            "--seed",
            "42",
            "--out",
            csv.to_str().unwrap(),
            "--bounds",
            "0,0,100,100",
        ])
        .output()
        .expect("molq generate");
    assert!(gen.status.success(), "{gen:?}");

    let (mut child, addr) = spawn_serve(&csv, &snap);
    let mut client = Client::connect(addr).expect("connect");

    // Acknowledged updates: each 200 means the journal append fsync'd.
    const ACKED: usize = 6;
    let mut count = 0;
    for i in 0..ACKED {
        count = insert(&mut client, i);
    }
    let base = count - ACKED;

    // One more update fired into the socket without reading the response,
    // then SIGKILL: the record is either durable or absent, never torn
    // into the recovered state.
    let mut raw = TcpStream::connect(addr).expect("raw connect");
    raw.write_all(
        b"POST /datasets/default/objects?set=0&x=77.625&y=3.875 HTTP/1.1\r\n\
          Host: drill\r\nContent-Length: 0\r\n\r\n",
    )
    .expect("fire and forget");
    raw.flush().expect("flush");
    // Give the request a moment to reach the handler so the drill
    // actually races the append, then pull the plug.
    std::thread::sleep(Duration::from_millis(30));
    child.kill().expect("SIGKILL");
    child.wait().expect("reap");
    drop(raw);

    // Restart over the same snapshot dir: base + journal replay.
    let (mut child2, addr2) = spawn_serve(&csv, &snap);
    let mut client2 = Client::connect(addr2).expect("reconnect");
    let after = insert(&mut client2, ACKED + 1) - 1;
    assert!(
        (base + ACKED..=base + ACKED + 1).contains(&after),
        "recovered {after} objects; expected {} acknowledged (+1 in-flight at most), base {base}",
        base + ACKED
    );
    child2.kill().expect("stop restarted server");
    child2.wait().expect("reap restarted server");
    let _ = std::fs::remove_dir_all(&dir);
}
