//! The experiment implementations, one per figure of §6.

use molq_core::prelude::*;
use molq_core::sweep::overlap;
use molq_datagen::geonames::layer_object_set;
use molq_datagen::workloads::{random_fw_groups, random_type_weights, standard_query};
use molq_datagen::GeoLayer;
use molq_fw::{solve_cost_bound, solve_sequential, StoppingRule};
use molq_geom::Mbr;
use std::time::{Duration, Instant};

/// The search space used by all experiments: a 1000 km square (metres).
pub fn bounds() -> Mbr {
    Mbr::new(0.0, 0.0, 1_000_000.0, 1_000_000.0)
}

/// Master seed for all experiment workloads.
pub const SEED: u64 = 2014;

fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t = Instant::now();
    let v = f();
    (v, t.elapsed())
}

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

/// One row of Fig 8 / Fig 9: per-algorithm execution time for a query.
#[derive(Debug, Clone)]
pub struct MolqRow {
    /// Objects sampled per type.
    pub objects_per_type: usize,
    /// SSC execution time (s).
    pub ssc_s: f64,
    /// RRB execution time (s).
    pub rrb_s: f64,
    /// MBRB execution time (s).
    pub mbrb_s: f64,
    /// RRB OVR count.
    pub rrb_ovrs: usize,
    /// MBRB OVR count.
    pub mbrb_ovrs: usize,
}

/// Fig 8 (3 types) / Fig 9 (4 types): MOLQ evaluation, SSC vs RRB vs MBRB.
pub fn molq_experiment(type_count: usize, sizes: &[usize]) -> Vec<MolqRow> {
    sizes
        .iter()
        .map(|&n| {
            let q = standard_query(type_count, n, bounds(), SEED);
            let (ssc, t_ssc) = time(|| solve_ssc(&q).expect("valid query"));
            let (rrb, t_rrb) = time(|| solve_rrb(&q).expect("valid query"));
            let (mbrb, t_mbrb) = time(|| solve_mbrb(&q).expect("valid query"));
            // Consistency guard: all three answers agree.
            let tol = 5e-3 * ssc.cost;
            assert!((ssc.cost - rrb.cost).abs() < tol, "n={n}: ssc/rrb diverge");
            assert!(
                (ssc.cost - mbrb.cost).abs() < tol,
                "n={n}: ssc/mbrb diverge"
            );
            MolqRow {
                objects_per_type: n,
                ssc_s: secs(t_ssc),
                rrb_s: secs(t_rrb),
                mbrb_s: secs(t_mbrb),
                rrb_ovrs: rrb.ovr_count,
                mbrb_ovrs: mbrb.ovr_count,
            }
        })
        .collect()
}

/// One row of Fig 10: Original vs Cost-Bound over a batch of Fermat–Weber
/// problems.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// Number of problems in the batch.
    pub problems: usize,
    /// Error bound ε.
    pub epsilon: f64,
    /// Baseline time (s).
    pub original_s: f64,
    /// Cost-bound time (s).
    pub cost_bound_s: f64,
    /// Baseline iterations.
    pub original_iters: usize,
    /// Cost-bound iterations.
    pub cost_bound_iters: usize,
}

/// Fig 10: cost-bound approach evaluation. Problems have 5 points each with
/// random coordinates and weights (§6.2).
pub fn fig10(problem_counts: &[usize], epsilons: &[f64]) -> Vec<Fig10Row> {
    let mut rows = Vec::new();
    for &count in problem_counts {
        let groups = random_fw_groups(count, 5, bounds(), SEED);
        for &eps in epsilons {
            let rule = StoppingRule::Either(eps, 100_000);
            let (a, t_orig) = time(|| solve_sequential(&groups, rule).unwrap());
            let (b, t_cb) = time(|| solve_cost_bound(&groups, rule).unwrap());
            assert!(
                (a.cost - b.cost).abs() < 1e-3 * a.cost,
                "batch approaches diverge: {} vs {}",
                a.cost,
                b.cost
            );
            rows.push(Fig10Row {
                problems: count,
                epsilon: eps,
                original_s: secs(t_orig),
                cost_bound_s: secs(t_cb),
                original_iters: a.stats.iterations,
                cost_bound_iters: b.stats.iterations,
            });
        }
    }
    rows
}

/// One row of Fig 11–13: overlap of two ordinary Voronoi diagrams.
#[derive(Debug, Clone)]
pub struct OverlapRow {
    /// First diagram size.
    pub n1: usize,
    /// Second diagram size.
    pub n2: usize,
    /// RRB overlap time (s), excluding diagram construction.
    pub rrb_s: f64,
    /// MBRB overlap time (s).
    pub mbrb_s: f64,
    /// RRB OVR count (Fig 12).
    pub rrb_ovrs: usize,
    /// MBRB OVR count.
    pub mbrb_ovrs: usize,
    /// RRB result footprint in bytes (Fig 13).
    pub rrb_bytes: usize,
    /// MBRB result footprint in bytes.
    pub mbrb_bytes: usize,
}

/// Fig 11 (time), Fig 12 (#OVRs), Fig 13 (memory): overlapping two ordinary
/// Voronoi diagrams built from STM and CH samples of the given sizes.
pub fn overlap_two_vds(size_pairs: &[(usize, usize)]) -> Vec<OverlapRow> {
    size_pairs
        .iter()
        .map(|&(n1, n2)| {
            let stm = layer_object_set(GeoLayer::Streams, n1, 1.0, bounds(), SEED);
            let ch = layer_object_set(GeoLayer::Churches, n2, 1.0, bounds(), SEED);
            let a = Movd::basic(&stm, 0, bounds()).expect("distinct sites");
            let b = Movd::basic(&ch, 1, bounds()).expect("distinct sites");
            let (rrb, t_rrb) = time(|| overlap(&a, &b, Boundary::Rrb));
            let (mbrb, t_mbrb) = time(|| overlap(&a, &b, Boundary::Mbrb));
            OverlapRow {
                n1,
                n2,
                rrb_s: secs(t_rrb),
                mbrb_s: secs(t_mbrb),
                rrb_ovrs: rrb.len(),
                mbrb_ovrs: mbrb.len(),
                rrb_bytes: rrb.footprint_bytes(),
                mbrb_bytes: mbrb.footprint_bytes(),
            }
        })
        .collect()
}

/// One row of Fig 14: multi-diagram overlap at the availability point.
#[derive(Debug, Clone)]
pub struct MultiOverlapRow {
    /// Number of object types overlapped.
    pub types: usize,
    /// Max objects per type fitting the memory budget (Fig 14a).
    pub max_objects: usize,
    /// Overlap time at that size (Fig 14b), seconds.
    pub time_s: f64,
    /// Resulting OVR count (Fig 14c).
    pub ovrs: usize,
    /// Result footprint bytes (Fig 14d).
    pub bytes: usize,
}

/// Overlaps the first `types` layers with `n` objects each; returns the
/// result MOVD.
pub fn overlap_k_layers(types: usize, n: usize, mode: Boundary) -> Movd {
    let weights = random_type_weights(types, SEED);
    let mut acc = Movd::identity(bounds());
    for (i, (&layer, w)) in GeoLayer::ALL[..types].iter().zip(weights).enumerate() {
        let set = layer_object_set(layer, n, w, bounds(), SEED);
        let basic = Movd::basic(&set, i, bounds()).expect("distinct sites");
        acc = acc.overlap(&basic, mode);
    }
    acc
}

/// Fig 14(a–d): for each type count, finds the largest per-type object count
/// (by doubling from `start`) whose overlap result footprint stays within
/// `budget_bytes`, then reports time/#OVRs/memory at that point.
///
/// `hard_cap` bounds the search so the harness stays laptop-friendly.
pub fn fig14(
    mode: Boundary,
    type_counts: &[usize],
    budget_bytes: usize,
    start: usize,
    hard_cap: usize,
) -> Vec<MultiOverlapRow> {
    type_counts
        .iter()
        .map(|&k| {
            // Doubling search for the availability point.
            let mut n = start;
            let mut best: Option<(usize, Movd, f64)> = None;
            loop {
                let (movd, t) = time(|| overlap_k_layers(k, n, mode));
                if movd.footprint_bytes() <= budget_bytes {
                    best = Some((n, movd, secs(t)));
                    if n >= hard_cap {
                        break;
                    }
                    n *= 2;
                } else {
                    break;
                }
            }
            let (max_objects, movd, time_s) =
                best.expect("even the starting size exceeded the budget");
            MultiOverlapRow {
                types: k,
                max_objects,
                time_s,
                ovrs: movd.len(),
                bytes: movd.footprint_bytes(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn molq_experiment_smoke() {
        let rows = molq_experiment(3, &[8]);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].ssc_s > 0.0 && rows[0].rrb_s > 0.0);
        assert!(rows[0].mbrb_ovrs >= rows[0].rrb_ovrs);
    }

    #[test]
    fn fig10_smoke() {
        let rows = fig10(&[50], &[1e-2]);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].cost_bound_iters <= rows[0].original_iters);
    }

    #[test]
    fn overlap_two_vds_smoke() {
        let rows = overlap_two_vds(&[(100, 150)]);
        let r = &rows[0];
        assert!(r.mbrb_ovrs >= r.rrb_ovrs);
        assert!(r.rrb_ovrs >= 150);
    }

    #[test]
    fn fig14_smoke() {
        let rows = fig14(Boundary::Rrb, &[2], 64 << 20, 64, 128);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].max_objects >= 64);
    }
}
