//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§6).
//!
//! The `experiments` binary prints each figure's series
//! (`cargo run --release -p molq-bench --bin experiments -- <fig8|fig9|fig10|fig11|fig12|fig13|fig14|all>`);
//! the Criterion benches in `benches/` cover the time-based figures for
//! statistically rigorous measurements. Counts and memory figures (12, 13,
//! 14a/c/d) are deterministic and printed by the binary only.

pub mod experiments;

pub use experiments::*;
