//! `parscan` — wall-clock scaling of the parallel scan layer.
//!
//! Times the two scan-layer workloads at 1/2/4/8 threads over the same
//! dataset — the Overlapper rebuild (`Movd::overlap_all_with`) and the
//! cost-bound solve (`solve_prebuilt_cancellable_with`) — verifies that
//! every multi-threaded run is bit-identical to the serial one, and writes
//! the measurements to a JSON report:
//!
//! ```text
//! cargo run --release -p molq-bench --bin parscan -- --objects 1600 --out BENCH_PR5.json
//! ```
//!
//! The report includes the host's `available_parallelism`; speedups are
//! bounded by the physical cores actually present.

use molq_core::prelude::*;
use molq_datagen::{geonames::layer_object_set, GeoLayer};
use molq_fw::StoppingRule;
use molq_geom::Mbr;
use std::fmt::Write as _;
use std::time::Instant;

const THREADS: [usize; 4] = [1, 2, 4, 8];
const SETS: usize = 3;
const SPACE: f64 = 10_000.0;

/// Objects per set for the tiny-group-set regression check: small enough
/// that every scan stays under `exec`'s sequential-work threshold.
const TINY_OBJECTS: usize = 24;
/// Repeated solves per thread count in the tiny check (amortizes timer
/// noise on sub-millisecond scans).
const TINY_ITERS: usize = 30;
/// A multi-threaded tiny scan may be at most this much slower than serial.
/// Tiny totals take the identical sequential path, so the only tolerated
/// slack is scheduler/timer noise.
const TINY_MARGIN: f64 = 2.0;
/// A multi-threaded main run (rebuild + solve at the full object count) may
/// be at most this much slower than serial. With the worker count capped at
/// the host's cores, extra configured threads change nothing on a small
/// host and help on a big one — so the only tolerated slack is timer noise.
const SCALE_MARGIN: f64 = 1.5;

struct Measurement {
    threads: usize,
    rebuild_s: f64,
    solve_s: f64,
    bit_identical: bool,
}

struct TinyMeasurement {
    threads: usize,
    solve_s: f64,
}

/// Regression guard for the BENCH_PR5 finding that 2–8 threads were slower
/// than 1 on tiny group sets: times repeated solves over a prebuilt tiny
/// MOVD and checks no multi-threaded run exceeds serial by [`TINY_MARGIN`].
fn run_tiny() -> Result<(Vec<TinyMeasurement>, bool), MolqError> {
    let query = build_query(TINY_OBJECTS);
    let open = CancelToken::new();
    let movd = Movd::overlap_all_with(
        &query.sets,
        query.bounds,
        Boundary::Rrb,
        ExecConfig::serial(),
    )?;

    let mut measurements = Vec::new();
    for threads in THREADS {
        let exec = ExecConfig::new(threads);
        let t0 = Instant::now();
        for _ in 0..TINY_ITERS {
            solve_prebuilt_cancellable_with(&query, &movd, &open, exec)?;
        }
        let solve_s = t0.elapsed().as_secs_f64();
        eprintln!(
            "tiny ({TINY_OBJECTS}/set) threads {threads}: {TINY_ITERS} solves in {solve_s:.4}s"
        );
        measurements.push(TinyMeasurement { threads, solve_s });
    }
    let serial = measurements[0].solve_s;
    let ok = measurements
        .iter()
        .all(|m| m.solve_s <= serial * TINY_MARGIN);
    Ok((measurements, ok))
}

fn build_query(objects: usize) -> MolqQuery {
    let bounds = Mbr::new(0.0, 0.0, SPACE, SPACE);
    let sets = (0..SETS)
        .map(|i| {
            layer_object_set(
                GeoLayer::ALL[i % GeoLayer::ALL.len()],
                objects,
                1.0 + i as f64 * 0.5,
                bounds,
                5_000 + i as u64,
            )
        })
        .collect();
    MolqQuery::new(sets, bounds).with_rule(StoppingRule::Either(1e-6, 100_000))
}

fn run(objects: usize) -> Result<(String, Vec<Measurement>, usize, bool), MolqError> {
    let query = build_query(objects);
    let open = CancelToken::new();

    let mut measurements = Vec::new();
    let mut baseline: Option<(Movd, MovdAnswer)> = None;
    let mut ovrs = 0;
    for threads in THREADS {
        let exec = ExecConfig::new(threads);
        let t0 = Instant::now();
        let movd = Movd::overlap_all_with(&query.sets, query.bounds, Boundary::Rrb, exec)?;
        let rebuild_s = t0.elapsed().as_secs_f64();
        ovrs = movd.len();

        let t1 = Instant::now();
        let answer = solve_prebuilt_cancellable_with(&query, &movd, &open, exec)?;
        let solve_s = t1.elapsed().as_secs_f64();

        let bit_identical = match &baseline {
            None => {
                baseline = Some((movd, answer));
                true
            }
            Some((base_movd, base)) => {
                base_movd.ovrs == movd.ovrs
                    && base.location.x.to_bits() == answer.location.x.to_bits()
                    && base.location.y.to_bits() == answer.location.y.to_bits()
                    && base.cost.to_bits() == answer.cost.to_bits()
            }
        };
        eprintln!(
            "threads {threads}: rebuild {rebuild_s:.3}s solve {solve_s:.3}s \
             ({ovrs} OVRs, bit_identical: {bit_identical})"
        );
        measurements.push(Measurement {
            threads,
            rebuild_s,
            solve_s,
            bit_identical,
        });
    }

    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let serial = &measurements[0];
    let at4 = measurements
        .iter()
        .find(|m| m.threads == 4)
        .expect("4-thread run");
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"parscan\",");
    let _ = writeln!(json, "  \"sets\": {SETS},");
    let _ = writeln!(json, "  \"objects_per_set\": {objects},");
    let _ = writeln!(json, "  \"ovrs\": {ovrs},");
    let _ = writeln!(json, "  \"available_parallelism\": {cores},");
    let _ = writeln!(
        json,
        "  \"note\": \"measured on a {cores}-core host; speedup over serial is bounded by the cores present\","
    );
    let _ = writeln!(
        json,
        "  \"rebuild_speedup_4t\": {:.3},",
        serial.rebuild_s / at4.rebuild_s
    );
    let _ = writeln!(
        json,
        "  \"solve_speedup_4t\": {:.3},",
        serial.solve_s / at4.solve_s
    );
    let scale_ok = measurements.iter().all(|m| {
        m.rebuild_s <= serial.rebuild_s * SCALE_MARGIN && m.solve_s <= serial.solve_s * SCALE_MARGIN
    });
    let _ = writeln!(json, "  \"scale_margin\": {SCALE_MARGIN},");
    let _ = writeln!(json, "  \"scale_regression_ok\": {scale_ok},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, m) in measurements.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"threads\": {}, \"rebuild_s\": {:.6}, \"solve_s\": {:.6}, \"bit_identical\": {}}}{}",
            m.threads,
            m.rebuild_s,
            m.solve_s,
            m.bit_identical,
            if i + 1 < measurements.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");

    let (tiny, tiny_ok) = run_tiny()?;
    let _ = writeln!(json, "  \"tiny_scan\": {{");
    let _ = writeln!(json, "    \"objects_per_set\": {TINY_OBJECTS},");
    let _ = writeln!(json, "    \"iterations\": {TINY_ITERS},");
    let _ = writeln!(json, "    \"margin\": {TINY_MARGIN},");
    let _ = writeln!(json, "    \"regression_ok\": {tiny_ok},");
    let _ = writeln!(json, "    \"results\": [");
    for (i, m) in tiny.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"threads\": {}, \"solve_s\": {:.6}}}{}",
            m.threads,
            m.solve_s,
            if i + 1 < tiny.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    Ok((json, measurements, ovrs, tiny_ok))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut objects = 1600usize;
    let mut out = "BENCH_PR5.json".to_string();
    let mut i = 0;
    while i < args.len() {
        let value = match args.get(i + 1) {
            Some(v) => v,
            None => {
                eprintln!("flag {} needs a value", args[i]);
                std::process::exit(2);
            }
        };
        match args[i].as_str() {
            "--objects" => match value.parse() {
                Ok(n) => objects = n,
                Err(e) => {
                    eprintln!("--objects: {e}");
                    std::process::exit(2);
                }
            },
            "--out" => out = value.clone(),
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
        i += 2;
    }

    match run(objects) {
        Ok((json, measurements, _, tiny_ok)) => {
            if measurements.iter().any(|m| !m.bit_identical) {
                eprintln!("FAIL: a multi-threaded answer diverged from the serial one");
                std::process::exit(1);
            }
            if !tiny_ok {
                eprintln!(
                    "FAIL: a multi-threaded tiny scan exceeded the serial wall by more than {TINY_MARGIN}x"
                );
                std::process::exit(1);
            }
            let serial = &measurements[0];
            if !measurements.iter().all(|m| {
                m.rebuild_s <= serial.rebuild_s * SCALE_MARGIN
                    && m.solve_s <= serial.solve_s * SCALE_MARGIN
            }) {
                eprintln!(
                    "FAIL: a multi-threaded rebuild or solve exceeded the serial wall by more than {SCALE_MARGIN}x"
                );
                std::process::exit(1);
            }
            if let Err(e) = std::fs::write(&out, &json) {
                eprintln!("{out}: {e}");
                std::process::exit(1);
            }
            println!("wrote {out}");
            print!("{json}");
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_is_bit_identical_and_emits_json() {
        let (json, measurements, ovrs, tiny_ok) = run(40).unwrap();
        assert_eq!(measurements.len(), THREADS.len());
        assert!(measurements.iter().all(|m| m.bit_identical));
        assert!(ovrs > 0);
        assert!(
            tiny_ok,
            "multi-threaded tiny scan regressed past the serial wall:\n{json}"
        );
        for key in [
            "\"bench\": \"parscan\"",
            "\"available_parallelism\"",
            "\"rebuild_speedup_4t\"",
            "\"solve_speedup_4t\"",
            "\"scale_margin\"",
            "\"bit_identical\": true",
            "\"tiny_scan\"",
            "\"regression_ok\": true",
        ] {
            assert!(json.contains(key), "missing {key}:\n{json}");
        }
    }
}
