//! Regenerates the paper's evaluation figures as text tables.
//!
//! ```text
//! cargo run --release -p molq-bench --bin experiments -- all
//! cargo run --release -p molq-bench --bin experiments -- fig11 --full
//! cargo run --release -p molq-bench --bin experiments -- all --threads 4
//! ```
//!
//! `--full` uses the paper-scale parameters (slower); the default sizes keep
//! every figure under a few minutes on a laptop while preserving the shapes.
//! `--threads N` runs the OVR scans and Overlapper on an N-thread pool
//! (results are identical; only the timings change).

use molq_bench::experiments::*;
use molq_core::Boundary;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    // `--threads N` routes every figure's scans and rebuilds through an
    // N-thread pool by seeding the scan layer's env knob before any solver
    // runs; answers are bit-identical at any setting, only timings move.
    if let Some(pos) = args.iter().position(|a| a == "--threads") {
        match args.get(pos + 1).map(|v| v.parse::<usize>()) {
            Some(Ok(t)) if t >= 1 => std::env::set_var(molq_core::exec::THREADS_ENV, t.to_string()),
            _ => {
                eprintln!("--threads needs a positive integer");
                std::process::exit(2);
            }
        }
    }
    let mut which: Vec<&str> = Vec::new();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if a == "--threads" {
            iter.next(); // skip the flag's value
        } else if !a.starts_with("--") {
            which.push(a.as_str());
        }
    }
    let all = which.is_empty() || which.contains(&"all");
    let want = |name: &str| all || which.contains(&name);

    if want("fig8") {
        fig8(full);
    }
    if want("fig9") {
        fig9(full);
    }
    if want("fig10") {
        run_fig10(full);
    }
    if want("fig11") || want("fig12") || want("fig13") {
        run_fig11_12_13(full);
    }
    if want("fig14") {
        run_fig14(full);
    }
}

fn fig8(full: bool) {
    let sizes: &[usize] = if full {
        &[20, 40, 60, 80, 100]
    } else {
        &[10, 20, 40]
    };
    println!("\n=== Fig 8 — MOLQ with three object types (STM, CH, SCH) ===");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>12} {:>12} {:>9} {:>9}",
        "objects", "SSC (s)", "RRB (s)", "MBRB (s)", "SSC/RRB", "SSC/MBRB", "RRB ovr", "MBRB ovr"
    );
    for r in molq_experiment(3, sizes) {
        println!(
            "{:>8} {:>10.4} {:>10.4} {:>10.4} {:>11.1}x {:>11.1}x {:>9} {:>9}",
            r.objects_per_type,
            r.ssc_s,
            r.rrb_s,
            r.mbrb_s,
            r.ssc_s / r.rrb_s,
            r.ssc_s / r.mbrb_s,
            r.rrb_ovrs,
            r.mbrb_ovrs
        );
    }
}

fn fig9(full: bool) {
    let sizes: &[usize] = if full {
        &[10, 14, 18, 22, 26]
    } else {
        &[6, 10, 14]
    };
    println!("\n=== Fig 9 — MOLQ with four object types (STM, CH, SCH, PPL), ε = 0.001 ===");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>12} {:>12} {:>9} {:>9}",
        "objects", "SSC (s)", "RRB (s)", "MBRB (s)", "SSC/RRB", "MBRB/RRB", "RRB ovr", "MBRB ovr"
    );
    for r in molq_experiment(4, sizes) {
        println!(
            "{:>8} {:>10.4} {:>10.4} {:>10.4} {:>11.1}x {:>11.2}x {:>9} {:>9}",
            r.objects_per_type,
            r.ssc_s,
            r.rrb_s,
            r.mbrb_s,
            r.ssc_s / r.rrb_s,
            r.mbrb_s / r.rrb_s,
            r.rrb_ovrs,
            r.mbrb_ovrs
        );
    }
}

fn run_fig10(full: bool) {
    let (counts, epsilons): (&[usize], &[f64]) = if full {
        (&[1_000, 10_000, 100_000], &[1e-2, 1e-3, 1e-4])
    } else {
        (&[1_000, 10_000], &[1e-2, 1e-3])
    };
    println!(
        "\n=== Fig 10 — Cost-bound (CB) vs Original batch Fermat–Weber (5 points/problem) ==="
    );
    println!(
        "{:>9} {:>8} {:>12} {:>12} {:>9} {:>12} {:>12}",
        "problems", "eps", "Orig (s)", "CB (s)", "speedup", "Orig iters", "CB iters"
    );
    for r in fig10(counts, epsilons) {
        println!(
            "{:>9} {:>8.0e} {:>12.4} {:>12.4} {:>8.1}x {:>12} {:>12}",
            r.problems,
            r.epsilon,
            r.original_s,
            r.cost_bound_s,
            r.original_s / r.cost_bound_s,
            r.original_iters,
            r.cost_bound_iters
        );
    }
}

fn run_fig11_12_13(full: bool) {
    let pairs: Vec<(usize, usize)> = if full {
        vec![
            (10_000, 10_000),
            (20_000, 20_000),
            (40_000, 40_000),
            (80_000, 80_000),
            (160_000, 160_000),
        ]
    } else {
        vec![
            (2_000, 2_000),
            (5_000, 5_000),
            (10_000, 10_000),
            (10_000, 20_000),
        ]
    };
    println!("\n=== Fig 11/12/13 — Overlapping two ordinary Voronoi diagrams (STM × CH) ===");
    println!(
        "{:>8} {:>8} {:>10} {:>10} {:>9} | {:>9} {:>9} {:>7} | {:>11} {:>11} {:>8}",
        "n1",
        "n2",
        "RRB (s)",
        "MBRB (s)",
        "speedup",
        "RRB ovr",
        "MBRB ovr",
        "ratio",
        "RRB bytes",
        "MBRB bytes",
        "mem +/-"
    );
    for r in overlap_two_vds(&pairs) {
        println!(
            "{:>8} {:>8} {:>10.4} {:>10.4} {:>8.1}x | {:>9} {:>9} {:>6.2}x | {:>11} {:>11} {:>7.0}%",
            r.n1,
            r.n2,
            r.rrb_s,
            r.mbrb_s,
            r.rrb_s / r.mbrb_s,
            r.rrb_ovrs,
            r.mbrb_ovrs,
            r.mbrb_ovrs as f64 / r.rrb_ovrs as f64,
            r.rrb_bytes,
            r.mbrb_bytes,
            100.0 * (r.mbrb_bytes as f64 - r.rrb_bytes as f64) / r.rrb_bytes as f64
        );
    }
    println!("(Fig 11 = time columns; Fig 12 = OVR columns; Fig 13 = byte columns)");
}

fn run_fig14(full: bool) {
    let budget: usize = if full { 1 << 30 } else { 96 << 20 };
    let (start, cap) = if full {
        (1_000, 256_000)
    } else {
        (250, 64_000)
    };
    let types = [2usize, 3, 4, 5];
    println!(
        "\n=== Fig 14 — Overlapping multiple Voronoi diagrams (budget {} MiB) ===",
        budget >> 20
    );
    for (mode, label) in [(Boundary::Rrb, "RRB"), (Boundary::Mbrb, "MBRB")] {
        println!("\n--- {label} ---");
        println!(
            "{:>6} {:>12} {:>10} {:>11} {:>13}",
            "types", "max objects", "time (s)", "#OVRs", "bytes"
        );
        for r in fig14(mode, &types, budget, start, cap) {
            println!(
                "{:>6} {:>12} {:>10.4} {:>11} {:>13}",
                r.types, r.max_objects, r.time_s, r.ovrs, r.bytes
            );
        }
    }
    // RRB* control: RRB evaluated at MBRB's availability parameters, as in
    // the paper's "fair comparison" runs.
    println!("\n--- RRB* (RRB at the MBRB availability points) ---");
    let mbrb_rows = fig14(Boundary::Mbrb, &types, budget, start, cap);
    println!(
        "{:>6} {:>12} {:>10} {:>11} {:>13} {:>12}",
        "types", "objects", "time (s)", "#OVRs", "bytes", "MBRB/RRB*"
    );
    for m in mbrb_rows {
        let t = std::time::Instant::now();
        let movd = overlap_k_layers(m.types, m.max_objects, Boundary::Rrb);
        let dt = t.elapsed().as_secs_f64();
        println!(
            "{:>6} {:>12} {:>10.4} {:>11} {:>13} {:>11.1}x",
            m.types,
            m.max_objects,
            dt,
            movd.len(),
            molq_core::Footprint::footprint_bytes(&movd),
            m.ovrs as f64 / movd.len() as f64
        );
    }
    println!("(Fig 14a = max objects; 14b = time; 14c = #OVRs incl. MBRB/RRB* ratio; 14d = bytes)");
}
