//! `netbench` — pool vs. epoll transport comparison for the MOLQ server.
//!
//! Two sweeps against in-process servers over the same synthetic dataset,
//! results written as `BENCH_PR7.json`:
//!
//! * **Connection sweep.** For each transport and each `--conns` point
//!   (default 64, 256, 1024), that many closed-loop keep-alive clients hit
//!   `/locate` for `--duration-ms`; the cell records completed requests,
//!   errors (shed `503`s, reconnects), and latency quantiles. The pool
//!   transport parks a worker per connection, so past `workers` connections
//!   the rest shed-churn; the epoll transport multiplexes every connection
//!   onto the readiness loop and keeps serving all of them.
//! * **Batch sweep.** A small fixed client count posts `/topk_batch?n=B`
//!   for each `--batches` point (default 1, 8, 32, 128), recording item
//!   throughput and the server's per-batch scan amortization — the payoff
//!   of pinning one snapshot and running one sweep per distinct key.
//!
//! Every client reconnects on error (both transports close a connection
//! after a shed `503`), so cells complete even when most connections are
//! being pushed back.
//!
//! ```text
//! cargo run --release -p molq-bench --bin netbench -- --duration-ms 2000 --out BENCH_PR7.json
//! ```

use molq_datagen::{geonames::layer_object_set, GeoLayer};
use molq_geom::Mbr;
use molq_server::engine::{DatasetSpec, Engine};
use molq_server::http::{start, ServerConfig, ServerHandle, Transport};
use molq_server::service::Service;
use molq_server::Client;
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Space the in-process dataset lives in.
const SPACE: f64 = 1000.0;
/// Client socket read timeout — bounds how long a starved client blocks
/// past the cell deadline.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(2);
/// Clients driving the batch sweep (few enough that both transports serve
/// them all; the variable is the batch size, not the connection count).
const BATCH_CONNS: usize = 4;

struct Config {
    duration_ms: u64,
    conns: Vec<usize>,
    batches: Vec<usize>,
    workers: usize,
    sets: usize,
    objects: usize,
    out: String,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            duration_ms: 2000,
            conns: vec![64, 256, 1024],
            batches: vec![1, 8, 32, 128],
            workers: 4,
            sets: 3,
            objects: 40,
            out: "BENCH_PR7.json".into(),
        }
    }
}

fn parse_args(args: &[String]) -> Result<Config, String> {
    let mut cfg = Config::default();
    let mut i = 0;
    while i < args.len() {
        let key = args[i].as_str();
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("flag {key} needs a value"))?;
        let list = |v: &str, key: &str| -> Result<Vec<usize>, String> {
            let parsed: Vec<usize> = v
                .split(',')
                .map(|p| p.parse().map_err(|e| format!("{key}: {e}")))
                .collect::<Result<_, _>>()?;
            if parsed.is_empty() || parsed.contains(&0) {
                return Err(format!("{key}: needs positive comma-separated counts"));
            }
            Ok(parsed)
        };
        match key {
            "--duration-ms" => {
                cfg.duration_ms = value.parse().map_err(|e| format!("{key}: {e}"))?
            }
            "--conns" => cfg.conns = list(value, key)?,
            "--batches" => cfg.batches = list(value, key)?,
            "--workers" => cfg.workers = value.parse().map_err(|e| format!("{key}: {e}"))?,
            "--sets" => cfg.sets = value.parse().map_err(|e| format!("{key}: {e}"))?,
            "--objects" => cfg.objects = value.parse().map_err(|e| format!("{key}: {e}"))?,
            "--out" => cfg.out = value.clone(),
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 2;
    }
    if cfg.duration_ms == 0 || cfg.workers == 0 {
        return Err("--duration-ms and --workers must be positive".into());
    }
    Ok(cfg)
}

/// The transports available on this host.
fn transports() -> Vec<Transport> {
    let mut t = vec![Transport::Pool];
    if cfg!(target_os = "linux") {
        t.push(Transport::Epoll);
    }
    t
}

fn spawn_server(cfg: &Config, transport: Transport) -> Result<ServerHandle, String> {
    let bounds = Mbr::new(0.0, 0.0, SPACE, SPACE);
    let sets = (0..cfg.sets)
        .map(|i| {
            layer_object_set(
                GeoLayer::ALL[i % GeoLayer::ALL.len()],
                cfg.objects,
                1.0 + i as f64 * 0.5,
                bounds,
                77 + i as u64,
            )
        })
        .collect();
    let engine = Engine::new();
    engine.load_from_sets(
        DatasetSpec {
            bounds: Some(bounds),
            ..DatasetSpec::new("default", Vec::new())
        },
        sets,
    )?;
    start(
        Arc::new(Service::new(engine)),
        ServerConfig {
            workers: cfg.workers,
            transport,
            ..ServerConfig::default()
        },
    )
    .map_err(|e| format!("bind: {e}"))
}

#[derive(Default)]
struct CellOutcome {
    latencies_micros: Vec<u64>,
    completed: usize,
    items: usize,
    errors: usize,
}

/// One cell's aggregate: completed-request throughput plus latency
/// quantiles over the `200`s.
struct Cell {
    completed: usize,
    errors: usize,
    throughput: f64,
    items_per_s: f64,
    p50_us: u64,
    p99_us: u64,
}

/// The latency percentile (`q` in [0, 1]) of an unsorted sample, in µs.
fn percentile_micros(samples: &mut [u64], q: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let rank = ((q.clamp(0.0, 1.0) * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

/// One client: closed-loop requests against `target` until `deadline`,
/// reconnecting whenever the server closes or sheds the connection.
fn bench_client(
    addr: SocketAddr,
    deadline: Instant,
    target: &str,
    batch_items: usize,
) -> CellOutcome {
    let mut outcome = CellOutcome::default();
    let mut client: Option<Client> = None;
    while Instant::now() < deadline {
        if client.is_none() {
            match Client::connect_with_timeout(addr, CLIENT_TIMEOUT) {
                Ok(c) => client = Some(c),
                Err(_) => {
                    outcome.errors += 1;
                    std::thread::sleep(Duration::from_millis(1));
                    continue;
                }
            }
        }
        let c = client.as_mut().expect("client just connected");
        let started = Instant::now();
        let result = if batch_items > 0 {
            c.post_body(target, b"")
        } else {
            c.get(target)
        };
        match result {
            Ok(r) if r.status == 200 => {
                outcome.completed += 1;
                outcome.items += batch_items.max(1);
                outcome
                    .latencies_micros
                    .push(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
            }
            Ok(_) => {
                // Shed (`503`) or failed; the server closes the connection
                // after a shed, so start fresh and yield briefly rather
                // than hammering the accept loop.
                outcome.errors += 1;
                client = None;
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => {
                outcome.errors += 1;
                client = None;
            }
        }
    }
    outcome
}

/// Runs one (transport, conns, target) cell against a fresh server.
fn run_cell(
    cfg: &Config,
    transport: Transport,
    conns: usize,
    target: &str,
    batch_items: usize,
) -> Result<Cell, String> {
    let handle = spawn_server(cfg, transport)?;
    let addr = handle.addr();
    let started = Instant::now();
    let deadline = started + Duration::from_millis(cfg.duration_ms);
    let outcomes: Vec<CellOutcome> = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..conns)
            .map(|_| {
                std::thread::Builder::new()
                    // 1024 client threads at the default 8 MiB stack would
                    // reserve 8 GiB of address space; the client loop is
                    // shallow.
                    .stack_size(256 * 1024)
                    .spawn_scoped(scope, || bench_client(addr, deadline, target, batch_items))
                    .expect("spawn bench client")
            })
            .collect();
        clients
            .into_iter()
            .map(|c| c.join().expect("bench client panicked"))
            .collect()
    });
    let elapsed = started.elapsed();
    handle.shutdown();

    let mut latencies = Vec::new();
    let mut completed = 0;
    let mut errors = 0;
    let mut items = 0;
    for o in outcomes {
        latencies.extend(o.latencies_micros);
        completed += o.completed;
        errors += o.errors;
        items += o.items;
    }
    Ok(Cell {
        completed,
        errors,
        throughput: completed as f64 / elapsed.as_secs_f64(),
        items_per_s: items as f64 / elapsed.as_secs_f64(),
        p50_us: percentile_micros(&mut latencies, 0.50),
        p99_us: percentile_micros(&mut latencies, 0.99),
    })
}

fn run(cfg: &Config) -> Result<String, String> {
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"netbench\",");
    let _ = writeln!(json, "  \"available_parallelism\": {cores},");
    let _ = writeln!(json, "  \"workers\": {},", cfg.workers);
    let _ = writeln!(json, "  \"duration_ms_per_cell\": {},", cfg.duration_ms);

    // Connection sweep: /locate, closed loop, per transport.
    let mut by_conns: Vec<(usize, Vec<(Transport, Cell)>)> = Vec::new();
    let _ = writeln!(json, "  \"connection_sweep\": [");
    let mut first = true;
    for &conns in &cfg.conns {
        let mut cells = Vec::new();
        for transport in transports() {
            eprintln!("connection sweep: {} x {conns}...", transport.name());
            let cell = run_cell(cfg, transport, conns, "/locate?x=500&y=500", 0)?;
            eprintln!(
                "  {} conns={conns}: {:.0} req/s p99={}us errors={}",
                transport.name(),
                cell.throughput,
                cell.p99_us,
                cell.errors
            );
            if !first {
                let _ = writeln!(json, ",");
            }
            first = false;
            let _ = write!(
                json,
                "    {{\"transport\": \"{}\", \"conns\": {conns}, \"completed\": {}, \
                 \"errors\": {}, \"throughput_rps\": {:.1}, \"p50_us\": {}, \"p99_us\": {}}}",
                transport.name(),
                cell.completed,
                cell.errors,
                cell.throughput,
                cell.p50_us,
                cell.p99_us,
            );
            cells.push((transport, cell));
        }
        by_conns.push((conns, cells));
    }
    let _ = writeln!(json, "\n  ],");

    // Head-to-head ratios per connection count (only meaningful when both
    // transports ran).
    let _ = writeln!(json, "  \"epoll_vs_pool\": [");
    let mut first = true;
    for (conns, cells) in &by_conns {
        let pool = cells.iter().find(|(t, _)| *t == Transport::Pool);
        let epoll = cells.iter().find(|(t, _)| *t == Transport::Epoll);
        if let (Some((_, pool)), Some((_, epoll))) = (pool, epoll) {
            if !first {
                let _ = writeln!(json, ",");
            }
            first = false;
            let _ = write!(
                json,
                "    {{\"conns\": {conns}, \"pool_rps\": {:.1}, \"epoll_rps\": {:.1}, \
                 \"epoll_over_pool\": {:.3}}}",
                pool.throughput,
                epoll.throughput,
                epoll.throughput / pool.throughput.max(1e-9),
            );
        }
    }
    let _ = writeln!(json, "\n  ],");

    // Batch sweep: few connections, varying items per request.
    let _ = writeln!(json, "  \"batch_sweep\": [");
    let mut first = true;
    for transport in transports() {
        for &batch in &cfg.batches {
            eprintln!("batch sweep: {} x {batch}...", transport.name());
            let target = format!("/topk_batch?n={batch}&k=3");
            let cell = run_cell(cfg, transport, BATCH_CONNS, &target, batch)?;
            eprintln!(
                "  {} batch={batch}: {:.0} items/s p99={}us",
                transport.name(),
                cell.items_per_s,
                cell.p99_us
            );
            if !first {
                let _ = writeln!(json, ",");
            }
            first = false;
            let _ = write!(
                json,
                "    {{\"transport\": \"{}\", \"batch\": {batch}, \"conns\": {BATCH_CONNS}, \
                 \"completed\": {}, \"errors\": {}, \"items_per_s\": {:.1}, \"p50_us\": {}, \
                 \"p99_us\": {}}}",
                transport.name(),
                cell.completed,
                cell.errors,
                cell.items_per_s,
                cell.p50_us,
                cell.p99_us,
            );
        }
    }
    let _ = writeln!(json, "\n  ]");
    let _ = writeln!(json, "}}");
    Ok(json)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_args(&args) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    match run(&cfg) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&cfg.out, &json) {
                eprintln!("{}: {e}", cfg.out);
                std::process::exit(1);
            }
            println!("wrote {}", cfg.out);
            print!("{json}");
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_flags_and_rejects_nonsense() {
        let cfg = parse_args(&argv(
            "--duration-ms 500 --conns 2,4 --batches 1,8 --workers 2",
        ))
        .unwrap();
        assert_eq!(cfg.duration_ms, 500);
        assert_eq!(cfg.conns, vec![2, 4]);
        assert_eq!(cfg.batches, vec![1, 8]);
        assert_eq!(cfg.workers, 2);
        assert_eq!(parse_args(&[]).unwrap().conns, vec![64, 256, 1024]);
        assert!(parse_args(&argv("--conns 0,2")).is_err());
        assert!(parse_args(&argv("--duration-ms 0")).is_err());
        assert!(parse_args(&argv("--bogus 1")).is_err());
    }

    #[test]
    fn smoke_sweep_emits_every_section() {
        let cfg = Config {
            duration_ms: 200,
            conns: vec![2],
            batches: vec![1, 4],
            workers: 2,
            sets: 2,
            objects: 12,
            ..Config::default()
        };
        let json = run(&cfg).unwrap();
        for key in [
            "\"bench\": \"netbench\"",
            "\"connection_sweep\"",
            "\"batch_sweep\"",
            "\"transport\": \"pool\"",
            "\"throughput_rps\"",
            "\"items_per_s\"",
        ] {
            assert!(json.contains(key), "missing {key}:\n{json}");
        }
        #[cfg(target_os = "linux")]
        {
            assert!(json.contains("\"transport\": \"epoll\""), "{json}");
            assert!(json.contains("\"epoll_over_pool\""), "{json}");
        }
    }
}
