//! `update_patch` — per-update patch latency vs. a from-scratch rebuild.
//!
//! Builds a live MOVD at serving scale (default 3 sets × 1,600 objects =
//! 4,800), applies a battery of single-object inserts and removes through
//! `LiveMovd::apply`, and compares the mean patch wall against rebuilding
//! the whole diagram with `Movd::overlap_all_with`. After the battery, the
//! patched diagram must be **bit-identical** to a fresh rebuild over the
//! updated sets — the invariant the live-update subsystem is built on.
//!
//! ```text
//! cargo run --release -p molq-bench --bin update_patch -- --out BENCH_PR6.json
//! ```
//!
//! At report scale (≥ 4,000 objects) the run fails unless patching is at
//! least [`MIN_SPEEDUP`]× faster than the rebuild; smoke-scale runs (CI)
//! only enforce bit-identity.

use molq_core::prelude::*;
use molq_datagen::{geonames::layer_object_set, GeoLayer};
use molq_geom::{Mbr, Point};
use std::fmt::Write as _;
use std::time::Instant;

const SETS: usize = 3;
const SPACE: f64 = 10_000.0;
/// Updates applied (and timed) per run, alternating insert/remove.
const UPDATES: usize = 12;
/// Patch latency must beat the full rebuild by at least this factor at
/// report scale.
const MIN_SPEEDUP: f64 = 10.0;
/// Total-object threshold above which the speedup gate is enforced.
const REPORT_SCALE: usize = 4_000;

struct PatchMeasurement {
    kind: &'static str,
    patch_s: f64,
    cells_reclipped: usize,
    ovrs_rederived: usize,
}

struct Report {
    json: String,
    byte_identical: bool,
    speedup: f64,
    speedup_enforced: bool,
}

fn build_sets(objects: usize) -> Vec<ObjectSet> {
    (0..SETS)
        .map(|i| {
            layer_object_set(
                GeoLayer::ALL[i % GeoLayer::ALL.len()],
                objects,
                1.0 + i as f64 * 0.25,
                Mbr::new(0.0, 0.0, SPACE, SPACE),
                6_000 + i as u64,
            )
        })
        .collect()
}

/// Distinct off-lattice insert locations, clear of the generator's points.
fn insert_point(i: usize) -> Point {
    Point::new(
        (i as f64 * 937.3125 + 211.203125) % SPACE,
        (i as f64 * 541.578125 + 97.59375) % SPACE,
    )
}

fn run(objects: usize) -> Result<Report, MolqError> {
    let bounds = Mbr::new(0.0, 0.0, SPACE, SPACE);
    let exec = ExecConfig::serial();
    let sets = build_sets(objects);

    // Baseline: the full Overlapper rebuild the patch path replaces.
    let t0 = Instant::now();
    let full = Movd::overlap_all_with(&sets, bounds, Boundary::Rrb, exec)?;
    let rebuild_s = t0.elapsed().as_secs_f64();
    let ovrs = full.len();
    eprintln!("full rebuild: {ovrs} OVRs in {rebuild_s:.3}s");

    let mut live = LiveMovd::build(sets, bounds, Boundary::Rrb, exec)?;
    let mut measurements = Vec::new();
    for i in 0..UPDATES {
        let set = i % SETS;
        let update = if i % 2 == 0 {
            Update::Insert {
                set,
                object: SpatialObject {
                    loc: insert_point(i),
                    w_t: 1.0 + set as f64 * 0.25,
                    // Unit object weight, like every generated site: a heavier
                    // site turns its cell into a multiplicatively-weighted
                    // monster that legitimately fragments the whole layer —
                    // a rebuild-shaped workload, not a patch-shaped one.
                    w_o: 1.0,
                },
            }
        } else {
            Update::Remove {
                set,
                index: (i * 97) % live.sets()[set].objects.len(),
            }
        };
        let kind = match update {
            Update::Insert { .. } => "insert",
            Update::Remove { .. } => "remove",
        };
        let t = Instant::now();
        let stats = live.apply(&update)?;
        let patch_s = t.elapsed().as_secs_f64();
        eprintln!(
            "{kind} #{i}: {patch_s:.4}s ({} cells re-clipped, {} OVRs re-derived)",
            stats.cells_reclipped, stats.ovrs_rederived
        );
        measurements.push(PatchMeasurement {
            kind,
            patch_s,
            cells_reclipped: stats.cells_reclipped,
            ovrs_rederived: stats.ovrs_rederived,
        });
    }

    // The whole point: the patched diagram equals a fresh rebuild over the
    // updated sets, bit for bit (grid included).
    let fresh = Movd::overlap_all_with(live.sets(), bounds, Boundary::Rrb, exec)?;
    let byte_identical = movd_bits_eq(live.index().movd(), &fresh)
        && *live.index().grid() == LocateGrid::build(&fresh);

    let mean_patch_s = measurements.iter().map(|m| m.patch_s).sum::<f64>() / UPDATES as f64;
    let max_patch_s = measurements.iter().map(|m| m.patch_s).fold(0.0, f64::max);
    let speedup = rebuild_s / mean_patch_s;
    let total_objects = objects * SETS;
    let speedup_enforced = total_objects >= REPORT_SCALE;

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"update_patch\",");
    let _ = writeln!(json, "  \"sets\": {SETS},");
    let _ = writeln!(json, "  \"objects_per_set\": {objects},");
    let _ = writeln!(json, "  \"total_objects\": {total_objects},");
    let _ = writeln!(json, "  \"ovrs\": {ovrs},");
    let _ = writeln!(json, "  \"rebuild_s\": {rebuild_s:.6},");
    let _ = writeln!(json, "  \"updates\": {UPDATES},");
    let _ = writeln!(json, "  \"mean_patch_s\": {mean_patch_s:.6},");
    let _ = writeln!(json, "  \"max_patch_s\": {max_patch_s:.6},");
    let _ = writeln!(json, "  \"patch_speedup\": {speedup:.3},");
    let _ = writeln!(json, "  \"min_speedup\": {MIN_SPEEDUP},");
    let _ = writeln!(json, "  \"speedup_enforced\": {speedup_enforced},");
    let _ = writeln!(json, "  \"byte_identical\": {byte_identical},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, m) in measurements.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"kind\": \"{}\", \"patch_s\": {:.6}, \"cells_reclipped\": {}, \"ovrs_rederived\": {}}}{}",
            m.kind,
            m.patch_s,
            m.cells_reclipped,
            m.ovrs_rederived,
            if i + 1 < measurements.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    Ok(Report {
        json,
        byte_identical,
        speedup,
        speedup_enforced,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut objects = 1_600usize;
    let mut out = "BENCH_PR6.json".to_string();
    let mut i = 0;
    while i < args.len() {
        let value = match args.get(i + 1) {
            Some(v) => v,
            None => {
                eprintln!("flag {} needs a value", args[i]);
                std::process::exit(2);
            }
        };
        match args[i].as_str() {
            "--objects" => match value.parse() {
                Ok(n) => objects = n,
                Err(e) => {
                    eprintln!("--objects: {e}");
                    std::process::exit(2);
                }
            },
            "--out" => out = value.clone(),
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
        i += 2;
    }

    match run(objects) {
        Ok(report) => {
            if !report.byte_identical {
                eprintln!("FAIL: the patched diagram diverged from a fresh rebuild");
                std::process::exit(1);
            }
            if report.speedup_enforced && report.speedup < MIN_SPEEDUP {
                eprintln!(
                    "FAIL: patch speedup {:.2}x is below the required {MIN_SPEEDUP}x",
                    report.speedup
                );
                std::process::exit(1);
            }
            if let Err(e) = std::fs::write(&out, &report.json) {
                eprintln!("{out}: {e}");
                std::process::exit(1);
            }
            println!("wrote {out}");
            print!("{}", report.json);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_is_byte_identical_and_emits_json() {
        let report = run(40).unwrap();
        assert!(
            report.byte_identical,
            "patched diagram diverged:\n{}",
            report.json
        );
        // Speedup is only enforced at report scale; a 120-object run just
        // records it.
        assert!(!report.speedup_enforced);
        for key in [
            "\"bench\": \"update_patch\"",
            "\"rebuild_s\"",
            "\"mean_patch_s\"",
            "\"patch_speedup\"",
            "\"byte_identical\": true",
        ] {
            assert!(report.json.contains(key), "missing {key}:\n{}", report.json);
        }
    }
}
