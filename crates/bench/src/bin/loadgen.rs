//! `loadgen` — a closed-loop load generator for the MOLQ server.
//!
//! Spawns `--threads` clients, each issuing `--requests` requests over one
//! keep-alive connection (closed loop: the next request starts when the
//! previous response lands), then reports throughput, error counts, a `5xx`
//! breakdown with shed rate, and latency quantiles per endpoint mix.
//!
//! `503`s (accept-queue overload or deadline shedding) are retried up to
//! `--retries` times with jittered exponential backoff, honoring the
//! server's `Retry-After` hint as the floor.
//!
//! By default an in-process server is started over synthetic GeoNames-style
//! layers, so the binary is self-contained:
//!
//! ```text
//! cargo run --release -p molq-bench --bin loadgen -- --threads 4 --requests 500
//! cargo run --release -p molq-bench --bin loadgen -- --addr 127.0.0.1:8080
//! ```

use molq_datagen::{geonames::layer_object_set, GeoLayer};
use molq_geom::Mbr;
use molq_server::engine::{DatasetSpec, Engine};
use molq_server::http::{start, ServerConfig, ServerHandle};
use molq_server::service::Service;
use molq_server::Client;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

#[derive(Debug, Clone, PartialEq)]
struct Config {
    threads: usize,
    requests: usize,
    addr: Option<SocketAddr>,
    sets: usize,
    objects: usize,
    /// Relative weights of locate / solve / topk traffic.
    mix: (u32, u32, u32),
    /// Retries per request on a `503` (shed / overload), with jittered
    /// exponential backoff honoring the server's `Retry-After`.
    retries: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            threads: 4,
            requests: 200,
            addr: None,
            sets: 3,
            objects: 40,
            mix: (90, 5, 5),
            retries: 3,
        }
    }
}

fn parse_args(args: &[String]) -> Result<Config, String> {
    let mut cfg = Config::default();
    let mut i = 0;
    while i < args.len() {
        let key = args[i].as_str();
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("flag {key} needs a value"))?;
        match key {
            "--threads" => cfg.threads = value.parse().map_err(|e| format!("{key}: {e}"))?,
            "--requests" => cfg.requests = value.parse().map_err(|e| format!("{key}: {e}"))?,
            "--addr" => cfg.addr = Some(value.parse().map_err(|e| format!("{key}: {e}"))?),
            "--sets" => cfg.sets = value.parse().map_err(|e| format!("{key}: {e}"))?,
            "--objects" => cfg.objects = value.parse().map_err(|e| format!("{key}: {e}"))?,
            "--mix" => cfg.mix = parse_mix(value)?,
            "--retries" => cfg.retries = value.parse().map_err(|e| format!("{key}: {e}"))?,
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 2;
    }
    if cfg.threads == 0 || cfg.requests == 0 {
        return Err("--threads and --requests must be positive".into());
    }
    Ok(cfg)
}

/// Parses `locate:solve:topk` weights, e.g. `90:5:5`.
fn parse_mix(s: &str) -> Result<(u32, u32, u32), String> {
    let parts: Vec<u32> = s
        .split(':')
        .map(|p| p.parse().map_err(|e| format!("--mix: {e}")))
        .collect::<Result<_, _>>()?;
    match parts.as_slice() {
        [l, v, t] if l + v + t > 0 => Ok((*l, *v, *t)),
        _ => Err("--mix must be locate:solve:topk with a positive sum".into()),
    }
}

/// The latency percentile (`q` in [0, 1]) of an unsorted sample, in µs.
fn percentile_micros(samples: &mut [u64], q: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let rank = ((q.clamp(0.0, 1.0) * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

/// Space the in-process dataset lives in.
const SPACE: f64 = 1000.0;

fn spawn_in_process_server(cfg: &Config) -> Result<ServerHandle, String> {
    let bounds = Mbr::new(0.0, 0.0, SPACE, SPACE);
    let sets = (0..cfg.sets)
        .map(|i| {
            let layer = GeoLayer::ALL[i % GeoLayer::ALL.len()];
            layer_object_set(
                layer,
                cfg.objects,
                1.0 + i as f64 * 0.5,
                bounds,
                77 + i as u64,
            )
        })
        .collect();
    let engine = Engine::new();
    engine.load_from_sets(
        DatasetSpec {
            bounds: Some(bounds),
            ..DatasetSpec::new("default", Vec::new())
        },
        sets,
    )?;
    start(
        Arc::new(Service::new(engine)),
        ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
    )
    .map_err(|e| format!("bind: {e}"))
}

#[derive(Default)]
struct ThreadOutcome {
    latencies_micros: Vec<u64>,
    /// Requests whose *final* response (after retries) was non-200.
    errors: usize,
    /// Every 5xx response seen, including retried ones: (500, 503, 504, other).
    status_500: usize,
    status_503: usize,
    status_504: usize,
    other_5xx: usize,
    /// Total responses received (requests + retries) — the shed-rate base.
    responses: usize,
}

impl ThreadOutcome {
    fn count(&mut self, status: u16) {
        self.responses += 1;
        match status {
            500 => self.status_500 += 1,
            503 => self.status_503 += 1,
            504 => self.status_504 += 1,
            s if s >= 500 => self.other_5xx += 1,
            _ => {}
        }
    }
}

fn client_thread(
    addr: SocketAddr,
    cfg: &Config,
    thread_id: usize,
) -> Result<ThreadOutcome, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let (l, v, t) = cfg.mix;
    let total_weight = u64::from(l + v + t);
    let mut outcome = ThreadOutcome {
        latencies_micros: Vec::with_capacity(cfg.requests),
        ..ThreadOutcome::default()
    };
    let mut state = 0x9E3779B97F4A7C15u64 ^ (thread_id as u64).wrapping_mul(0xA24BAED4963EE407);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 11
    };
    for _ in 0..cfg.requests {
        let roll = next() % total_weight;
        let target = if roll < u64::from(l) {
            // Cluster probes so the locate cache sees realistic reuse.
            let x = (next() % 1000) as f64 / 1000.0 * SPACE;
            let y = (next() % 1000) as f64 / 1000.0 * SPACE;
            format!("/locate?x={x:.3}&y={y:.3}")
        } else if roll < u64::from(l + v) {
            "/solve".to_string()
        } else {
            "/topk?k=3".to_string()
        };
        let started = Instant::now();
        let mut attempt = 0;
        let status = loop {
            let response = client.get(&target)?;
            outcome.count(response.status);
            if response.status != 503 || attempt >= cfg.retries {
                break response.status;
            }
            // Shed or overloaded: back off and retry. The server's
            // Retry-After is the floor; without one, exponential from 25 ms;
            // either way plus up to +50% jitter so retriers don't re-arrive
            // in lockstep.
            let base_ms = response
                .retry_after
                .map(|secs| secs * 1000)
                .unwrap_or(25u64 << attempt.min(6));
            let wait_ms = base_ms + next() % (base_ms / 2 + 1);
            std::thread::sleep(std::time::Duration::from_millis(wait_ms));
            attempt += 1;
        };
        // Closed-loop latency includes the retries the client sat through.
        outcome
            .latencies_micros
            .push(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        if status != 200 {
            outcome.errors += 1;
        }
    }
    Ok(outcome)
}

fn run(cfg: &Config) -> Result<String, String> {
    let handle = match cfg.addr {
        Some(_) => None,
        None => Some(spawn_in_process_server(cfg)?),
    };
    let addr = cfg
        .addr
        .unwrap_or_else(|| handle.as_ref().expect("in-process server").addr());

    let started = Instant::now();
    let outcomes: Vec<Result<ThreadOutcome, String>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..cfg.threads)
            .map(|t| scope.spawn(move || client_thread(addr, cfg, t)))
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("client thread panicked"))
            .collect()
    });
    let elapsed = started.elapsed();
    // Pull the server's scan telemetry before a possible in-process
    // shutdown: thread count and what the group scans actually did.
    let scan_line = scan_report(addr);
    if let Some(h) = handle {
        h.shutdown();
    }

    let mut latencies = Vec::new();
    let mut errors = 0;
    let mut sum = ThreadOutcome::default();
    for outcome in outcomes {
        let outcome = outcome?;
        latencies.extend(outcome.latencies_micros);
        errors += outcome.errors;
        sum.status_500 += outcome.status_500;
        sum.status_503 += outcome.status_503;
        sum.status_504 += outcome.status_504;
        sum.other_5xx += outcome.other_5xx;
        sum.responses += outcome.responses;
    }
    let total = latencies.len();
    let throughput = total as f64 / elapsed.as_secs_f64();
    let p50 = percentile_micros(&mut latencies, 0.50);
    let p99 = percentile_micros(&mut latencies, 0.99);
    let shed_rate = 100.0 * sum.status_503 as f64 / sum.responses.max(1) as f64;
    let (l, v, t) = cfg.mix;
    Ok(format!(
        "threads    : {}\n\
         requests   : {} ({errors} errors)\n\
         mix        : locate:solve:topk = {l}:{v}:{t}\n\
         5xx        : 500={} 503={} 504={} other={}\n\
         shed rate  : {shed_rate:.1}% (503s over {} responses incl. retries)\n\
         elapsed    : {elapsed:?}\n\
         throughput : {throughput:.0} req/s\n\
         p50        : {p50} \u{b5}s\n\
         p99        : {p99} \u{b5}s\n{}",
        cfg.threads,
        total,
        sum.status_500,
        sum.status_503,
        sum.status_504,
        sum.other_5xx,
        sum.responses,
        scan_line.unwrap_or_default(),
    ))
}

/// One report line from the server's `/stats` scan section: the server-side
/// scan pool width and what the group scans did over the whole run. `None`
/// when the server is unreachable or predates the scan telemetry.
fn scan_report(addr: SocketAddr) -> Option<String> {
    let mut client = Client::connect(addr).ok()?;
    let resp = client.get("/stats").ok()?;
    let scan = resp.body.get("scan")?;
    Some(format!(
        "server scan: threads={} scans={} groups_evaluated={} groups_pruned={} scan_time={} \u{b5}s\n",
        scan.get("threads")?.as_u64()?,
        scan.get("scans")?.as_u64()?,
        scan.get("groups_evaluated")?.as_u64()?,
        scan.get("groups_pruned")?.as_u64()?,
        scan.get("scan_time_us")?.as_u64()?,
    ))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let report = parse_args(&args).and_then(|cfg| run(&cfg));
    match report {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_flags_and_rejects_nonsense() {
        let cfg = parse_args(&argv("--threads 2 --requests 10 --mix 1:1:1 --retries 5")).unwrap();
        assert_eq!(cfg.threads, 2);
        assert_eq!(cfg.requests, 10);
        assert_eq!(cfg.mix, (1, 1, 1));
        assert_eq!(cfg.retries, 5);
        assert_eq!(parse_args(&[]).unwrap().retries, 3);
        assert!(parse_args(&argv("--threads")).is_err());
        assert!(parse_args(&argv("--threads 0 --requests 5")).is_err());
        assert!(parse_args(&argv("--bogus 1")).is_err());
        assert!(parse_mix("0:0:0").is_err());
        assert!(parse_mix("1:2").is_err());
    }

    #[test]
    fn percentiles_pick_rank_order_statistics() {
        let mut samples = vec![50, 10, 40, 20, 30];
        assert_eq!(percentile_micros(&mut samples, 0.5), 30);
        assert_eq!(percentile_micros(&mut samples, 1.0), 50);
        assert_eq!(percentile_micros(&mut samples, 0.0), 10);
        assert_eq!(percentile_micros(&mut [], 0.5), 0);
    }

    #[test]
    fn end_to_end_against_an_in_process_server() {
        let cfg = Config {
            threads: 2,
            requests: 25,
            sets: 2,
            objects: 12,
            mix: (8, 1, 1),
            ..Config::default()
        };
        let report = run(&cfg).unwrap();
        assert!(report.contains("requests   : 50 (0 errors)"), "{report}");
        assert!(
            report.contains("5xx        : 500=0 503=0 504=0"),
            "{report}"
        );
        assert!(report.contains("shed rate  : 0.0%"), "{report}");
        assert!(report.contains("throughput"), "{report}");
        assert!(report.contains("server scan: threads="), "{report}");
        assert!(report.contains("groups_evaluated="), "{report}");
    }
}
