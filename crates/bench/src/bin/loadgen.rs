//! `loadgen` — a load generator for the MOLQ server.
//!
//! Spawns `--threads` clients, each issuing `--requests` requests over one
//! keep-alive connection, then reports throughput, error counts, a `5xx`
//! breakdown with shed rate, and latency quantiles per endpoint mix.
//!
//! Two arrival models:
//!
//! * **closed** (default): the next request starts when the previous
//!   response lands — server push-back shows up as latency.
//! * **open** (`--arrival open --rate R`): requests are *scheduled* at a
//!   fixed aggregate rate of `R`/s regardless of responses, and latency is
//!   measured from the scheduled arrival — so a slow server accrues queueing
//!   delay instead of silently slowing the generator (no coordinated
//!   omission).
//!
//! `--batch N` sends the solve/topk share of the mix to the batch endpoints
//! (`/solve_batch?n=N`, `/topk_batch?n=N`), `--duration-ms` bounds the run
//! by wall clock instead of request count (soak mode), and
//! `--sweep 64,256,1024` repeats the workload once per listed connection
//! count and prints a summary table.
//!
//! `503`s (accept-queue overload or deadline shedding) are retried up to
//! `--retries` times with jittered exponential backoff, honoring the
//! server's `Retry-After` hint as the floor.
//!
//! By default an in-process server is started over synthetic GeoNames-style
//! layers (transport selectable with `--transport pool|epoll`), so the
//! binary is self-contained:
//!
//! ```text
//! cargo run --release -p molq-bench --bin loadgen -- --threads 4 --requests 500
//! cargo run --release -p molq-bench --bin loadgen -- --arrival open --rate 2000 --duration-ms 5000
//! cargo run --release -p molq-bench --bin loadgen -- --addr 127.0.0.1:8080
//! ```

use molq_datagen::{geonames::layer_object_set, GeoLayer};
use molq_geom::Mbr;
use molq_server::engine::{DatasetSpec, Engine};
use molq_server::http::{start, ServerConfig, ServerHandle, Transport};
use molq_server::service::Service;
use molq_server::Client;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// When a request fires, relative to the others on its connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Arrival {
    /// Fire as soon as the previous response lands.
    #[default]
    Closed,
    /// Fire on a fixed schedule derived from `--rate`, response or not.
    Open,
}

#[derive(Debug, Clone, PartialEq)]
struct Config {
    threads: usize,
    requests: usize,
    addr: Option<SocketAddr>,
    sets: usize,
    objects: usize,
    /// Relative weights of locate / solve / topk traffic.
    mix: (u32, u32, u32),
    /// Retries per request on a `503` (shed / overload), with jittered
    /// exponential backoff honoring the server's `Retry-After`.
    retries: usize,
    /// Arrival model; [`Arrival::Open`] requires `rate`.
    arrival: Arrival,
    /// Aggregate scheduled request rate (per second, across all threads)
    /// for the open arrival model.
    rate: f64,
    /// When > 0, the solve/topk share of the mix goes to the batch
    /// endpoints with this many items per request.
    batch: usize,
    /// When set, threads loop until this wall-clock budget elapses instead
    /// of stopping after `requests` (soak mode).
    duration_ms: Option<u64>,
    /// Connection counts to sweep; empty runs a single measurement at
    /// `threads`.
    sweep: Vec<usize>,
    /// Transport for the in-process server (ignored with `--addr`).
    transport: Transport,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            threads: 4,
            requests: 200,
            addr: None,
            sets: 3,
            objects: 40,
            mix: (90, 5, 5),
            retries: 3,
            arrival: Arrival::Closed,
            rate: 0.0,
            batch: 0,
            duration_ms: None,
            sweep: Vec::new(),
            transport: Transport::from_env().unwrap_or_default(),
        }
    }
}

fn parse_args(args: &[String]) -> Result<Config, String> {
    let mut cfg = Config::default();
    let mut i = 0;
    while i < args.len() {
        let key = args[i].as_str();
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("flag {key} needs a value"))?;
        match key {
            "--threads" => cfg.threads = value.parse().map_err(|e| format!("{key}: {e}"))?,
            "--requests" => cfg.requests = value.parse().map_err(|e| format!("{key}: {e}"))?,
            "--addr" => cfg.addr = Some(value.parse().map_err(|e| format!("{key}: {e}"))?),
            "--sets" => cfg.sets = value.parse().map_err(|e| format!("{key}: {e}"))?,
            "--objects" => cfg.objects = value.parse().map_err(|e| format!("{key}: {e}"))?,
            "--mix" => cfg.mix = parse_mix(value)?,
            "--retries" => cfg.retries = value.parse().map_err(|e| format!("{key}: {e}"))?,
            "--arrival" => {
                cfg.arrival = match value.as_str() {
                    "closed" => Arrival::Closed,
                    "open" => Arrival::Open,
                    other => return Err(format!("--arrival: unknown model {other:?}")),
                }
            }
            "--rate" => cfg.rate = value.parse().map_err(|e| format!("{key}: {e}"))?,
            "--batch" => cfg.batch = value.parse().map_err(|e| format!("{key}: {e}"))?,
            "--duration-ms" => {
                cfg.duration_ms = Some(value.parse().map_err(|e| format!("{key}: {e}"))?)
            }
            "--sweep" => {
                cfg.sweep = value
                    .split(',')
                    .map(|p| p.parse().map_err(|e| format!("--sweep: {e}")))
                    .collect::<Result<_, _>>()?;
                if cfg.sweep.contains(&0) {
                    return Err("--sweep: connection counts must be positive".into());
                }
            }
            "--transport" => {
                cfg.transport = Transport::parse(value)
                    .ok_or_else(|| format!("--transport: unknown transport {value:?}"))?
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 2;
    }
    if cfg.threads == 0 || cfg.requests == 0 {
        return Err("--threads and --requests must be positive".into());
    }
    if cfg.arrival == Arrival::Open && cfg.rate <= 0.0 {
        return Err("--arrival open needs --rate <requests/s>".into());
    }
    Ok(cfg)
}

/// Parses `locate:solve:topk` weights, e.g. `90:5:5`.
fn parse_mix(s: &str) -> Result<(u32, u32, u32), String> {
    let parts: Vec<u32> = s
        .split(':')
        .map(|p| p.parse().map_err(|e| format!("--mix: {e}")))
        .collect::<Result<_, _>>()?;
    match parts.as_slice() {
        [l, v, t] if l + v + t > 0 => Ok((*l, *v, *t)),
        _ => Err("--mix must be locate:solve:topk with a positive sum".into()),
    }
}

/// The latency percentile (`q` in [0, 1]) of an unsorted sample, in µs.
fn percentile_micros(samples: &mut [u64], q: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let rank = ((q.clamp(0.0, 1.0) * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

/// Space the in-process dataset lives in.
const SPACE: f64 = 1000.0;

fn spawn_in_process_server(cfg: &Config) -> Result<ServerHandle, String> {
    let bounds = Mbr::new(0.0, 0.0, SPACE, SPACE);
    let sets = (0..cfg.sets)
        .map(|i| {
            let layer = GeoLayer::ALL[i % GeoLayer::ALL.len()];
            layer_object_set(
                layer,
                cfg.objects,
                1.0 + i as f64 * 0.5,
                bounds,
                77 + i as u64,
            )
        })
        .collect();
    let engine = Engine::new();
    engine.load_from_sets(
        DatasetSpec {
            bounds: Some(bounds),
            ..DatasetSpec::new("default", Vec::new())
        },
        sets,
    )?;
    start(
        Arc::new(Service::new(engine)),
        ServerConfig {
            workers: 4,
            transport: cfg.transport,
            ..ServerConfig::default()
        },
    )
    .map_err(|e| format!("bind: {e}"))
}

#[derive(Default)]
struct ThreadOutcome {
    latencies_micros: Vec<u64>,
    /// Requests whose *final* response (after retries) was non-200.
    errors: usize,
    /// Every 5xx response seen, including retried ones: (500, 503, 504, other).
    status_500: usize,
    status_503: usize,
    status_504: usize,
    other_5xx: usize,
    /// Total responses received (requests + retries) — the shed-rate base.
    responses: usize,
    /// Work items acknowledged with a `200` (`--batch N` counts `N` per
    /// batch response; plain requests count 1).
    items: usize,
}

impl ThreadOutcome {
    fn count(&mut self, status: u16) {
        self.responses += 1;
        match status {
            500 => self.status_500 += 1,
            503 => self.status_503 += 1,
            504 => self.status_504 += 1,
            s if s >= 500 => self.other_5xx += 1,
            _ => {}
        }
    }
}

/// Issues one request, transparently reconnecting once if the server closed
/// the keep-alive connection (both transports close after a shed `503`).
fn issue(
    client: &mut Option<Client>,
    addr: SocketAddr,
    target: &str,
    post: bool,
) -> Result<molq_server::ClientResponse, String> {
    for fresh in [false, true] {
        if client.is_none() {
            *client = Some(Client::connect(addr).map_err(|e| format!("connect: {e}"))?);
        }
        let c = client.as_mut().expect("client just connected");
        let result = if post {
            c.post_body(target, b"")
        } else {
            c.get(target)
        };
        match result {
            Ok(response) => return Ok(response),
            Err(e) if !fresh => {
                // Stale keep-alive socket — drop it and retry once on a
                // fresh connection.
                let _ = e;
                *client = None;
            }
            Err(e) => return Err(e),
        }
    }
    unreachable!("the loop returns on its second pass")
}

fn client_thread(
    addr: SocketAddr,
    cfg: &Config,
    threads: usize,
    thread_id: usize,
) -> Result<ThreadOutcome, String> {
    let mut client = Some(Client::connect(addr).map_err(|e| format!("connect: {e}"))?);
    let (l, v, t) = cfg.mix;
    let total_weight = u64::from(l + v + t);
    let mut outcome = ThreadOutcome {
        latencies_micros: Vec::with_capacity(cfg.requests),
        ..ThreadOutcome::default()
    };
    let mut state = 0x9E3779B97F4A7C15u64 ^ (thread_id as u64).wrapping_mul(0xA24BAED4963EE407);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 11
    };
    // Open-loop schedule: this thread owns every `threads`-th slot of the
    // aggregate arrival process, so thread 0 starts at `phase` and each
    // subsequent arrival is `interval` later.
    let interval = Duration::from_secs_f64(threads as f64 / cfg.rate.max(1e-9));
    let phase = interval.mul_f64(thread_id as f64 / threads as f64);
    let started_at = Instant::now();
    let deadline = cfg
        .duration_ms
        .map(|ms| started_at + Duration::from_millis(ms));
    let mut sent = 0usize;
    loop {
        // Soak mode runs on wall clock; otherwise on the request budget.
        match deadline {
            Some(d) => {
                if Instant::now() >= d {
                    break;
                }
            }
            None => {
                if sent >= cfg.requests {
                    break;
                }
            }
        }
        let roll = next() % total_weight;
        let (target, post) = if roll < u64::from(l) {
            // Cluster probes so the locate cache sees realistic reuse.
            let x = (next() % 1000) as f64 / 1000.0 * SPACE;
            let y = (next() % 1000) as f64 / 1000.0 * SPACE;
            (format!("/locate?x={x:.3}&y={y:.3}"), false)
        } else if roll < u64::from(l + v) {
            match cfg.batch {
                0 => ("/solve".to_string(), false),
                n => (format!("/solve_batch?n={n}"), true),
            }
        } else {
            match cfg.batch {
                0 => ("/topk?k=3".to_string(), false),
                n => (format!("/topk_batch?n={n}&k=3"), true),
            }
        };
        // Open arrivals fire on schedule and time from the *scheduled*
        // start, so server slowness shows up as queueing delay instead of
        // stretching the schedule (closed-loop coordinated omission).
        let scheduled = match cfg.arrival {
            Arrival::Closed => Instant::now(),
            Arrival::Open => {
                let at = started_at + phase + interval.mul_f64(sent as f64);
                if let Some(pause) = at.checked_duration_since(Instant::now()) {
                    std::thread::sleep(pause);
                }
                at
            }
        };
        let mut attempt = 0;
        let status = loop {
            let response = issue(&mut client, addr, &target, post)?;
            outcome.count(response.status);
            if response.status != 503 || attempt >= cfg.retries {
                break response.status;
            }
            // Shed or overloaded: back off and retry. The server's
            // Retry-After is the floor; without one, exponential from 25 ms;
            // either way plus up to +50% jitter so retriers don't re-arrive
            // in lockstep.
            let base_ms = response
                .retry_after
                .map(|secs| secs * 1000)
                .unwrap_or(25u64 << attempt.min(6));
            let wait_ms = base_ms + next() % (base_ms / 2 + 1);
            std::thread::sleep(Duration::from_millis(wait_ms));
            attempt += 1;
        };
        // Latency includes the retries the client sat through (and, open
        // loop, any lateness against the schedule).
        outcome
            .latencies_micros
            .push(scheduled.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        if status != 200 {
            outcome.errors += 1;
        } else {
            outcome.items += cfg.batch.max(1);
        }
        sent += 1;
    }
    Ok(outcome)
}

fn run(cfg: &Config) -> Result<String, String> {
    if cfg.sweep.is_empty() {
        return measure(cfg, cfg.threads);
    }
    // Connection sweep: the same workload once per listed connection count,
    // then a compact table (the full per-point reports go to stderr).
    let mut table = String::from("conns  throughput  p50_us  p99_us  errors\n");
    for &conns in &cfg.sweep {
        let report = measure(cfg, conns)?;
        eprintln!("--- {conns} connections ---\n{report}");
        let field = |name: &str| {
            report
                .lines()
                .find_map(|l| l.strip_prefix(name))
                .map(|l| {
                    l.trim_start_matches([' ', ':'])
                        .split_whitespace()
                        .next()
                        .unwrap_or("?")
                        .to_string()
                })
                .unwrap_or_else(|| "?".into())
        };
        let errors = report
            .lines()
            .find(|l| l.starts_with("requests"))
            .and_then(|l| l.split_once('(').map(|(_, e)| e.trim_end_matches(')')))
            .unwrap_or("?")
            .to_string();
        table.push_str(&format!(
            "{conns:<6} {:<11} {:<7} {:<7} {}\n",
            field("throughput"),
            field("p50"),
            field("p99"),
            errors
        ));
    }
    Ok(table)
}

/// One full measurement at `threads` concurrent connections.
fn measure(cfg: &Config, threads: usize) -> Result<String, String> {
    let handle = match cfg.addr {
        Some(_) => None,
        None => Some(spawn_in_process_server(cfg)?),
    };
    let addr = cfg
        .addr
        .unwrap_or_else(|| handle.as_ref().expect("in-process server").addr());

    let started = Instant::now();
    let outcomes: Vec<Result<ThreadOutcome, String>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|t| scope.spawn(move || client_thread(addr, cfg, threads, t)))
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("client thread panicked"))
            .collect()
    });
    let elapsed = started.elapsed();
    // Pull the server's scan and arena telemetry before a possible
    // in-process shutdown: thread count, what the group scans actually did,
    // and the arena buffer/patch counters.
    let scan_line = scan_report(addr);
    let arena_line = arena_report(addr);
    if let Some(h) = handle {
        h.shutdown();
    }

    let mut latencies = Vec::new();
    let mut errors = 0;
    let mut sum = ThreadOutcome::default();
    for outcome in outcomes {
        let outcome = outcome?;
        latencies.extend(outcome.latencies_micros);
        errors += outcome.errors;
        sum.status_500 += outcome.status_500;
        sum.status_503 += outcome.status_503;
        sum.status_504 += outcome.status_504;
        sum.other_5xx += outcome.other_5xx;
        sum.responses += outcome.responses;
        sum.items += outcome.items;
    }
    let total = latencies.len();
    let throughput = total as f64 / elapsed.as_secs_f64();
    let items_rate = sum.items as f64 / elapsed.as_secs_f64();
    let p50 = percentile_micros(&mut latencies, 0.50);
    let p99 = percentile_micros(&mut latencies, 0.99);
    let shed_rate = 100.0 * sum.status_503 as f64 / sum.responses.max(1) as f64;
    let (l, v, t) = cfg.mix;
    let arrival_line = match cfg.arrival {
        Arrival::Closed => "closed".to_string(),
        Arrival::Open => format!("open at {} req/s scheduled", cfg.rate),
    };
    let batch_line = match cfg.batch {
        0 => String::new(),
        n => format!("batch      : {n} items/request ({items_rate:.0} items/s)\n"),
    };
    Ok(format!(
        "threads    : {threads}\n\
         arrival    : {arrival_line}\n\
         requests   : {} ({errors} errors)\n\
         mix        : locate:solve:topk = {l}:{v}:{t}\n\
         {batch_line}5xx        : 500={} 503={} 504={} other={}\n\
         shed rate  : {shed_rate:.1}% (503s over {} responses incl. retries)\n\
         elapsed    : {elapsed:?}\n\
         throughput : {throughput:.0} req/s\n\
         p50        : {p50} \u{b5}s\n\
         p99        : {p99} \u{b5}s\n{}{}",
        total,
        sum.status_500,
        sum.status_503,
        sum.status_504,
        sum.other_5xx,
        sum.responses,
        scan_line.unwrap_or_default(),
        arena_line.unwrap_or_default(),
    ))
}

/// One report line from the server's `/stats` scan section: the server-side
/// scan pool width and what the group scans did over the whole run. `None`
/// when the server is unreachable or predates the scan telemetry.
fn scan_report(addr: SocketAddr) -> Option<String> {
    let mut client = Client::connect(addr).ok()?;
    let resp = client.get("/stats").ok()?;
    let scan = resp.body.get("scan")?;
    Some(format!(
        "server scan: threads={} scans={} groups_evaluated={} groups_pruned={} scan_time={} \u{b5}s\n",
        scan.get("threads")?.as_u64()?,
        scan.get("scans")?.as_u64()?,
        scan.get("groups_evaluated")?.as_u64()?,
        scan.get("groups_pruned")?.as_u64()?,
        scan.get("scan_time_us")?.as_u64()?,
    ))
}

/// One report line from the server's `/stats` arena section: total arena
/// buffer bytes across datasets, patch segment copies, and how the last
/// snapshot restore's decode split between copy and validation. `None` when
/// the server is unreachable or predates the arena telemetry.
fn arena_report(addr: SocketAddr) -> Option<String> {
    let mut client = Client::connect(addr).ok()?;
    let resp = client.get("/stats").ok()?;
    let arena = resp.body.get("arena_stats")?;
    let bytes: u64 = arena
        .get("buffers")?
        .as_arr()?
        .iter()
        .filter_map(|b| b.get("total")?.as_u64())
        .sum();
    Some(format!(
        "server arena: buffer_bytes={bytes} segments_copied={} last_restore copy={} \u{b5}s \
         validate={} \u{b5}s\n",
        arena.get("segments_copied_total")?.as_u64()?,
        arena.get("last_restore_copy_us")?.as_u64()?,
        arena.get("last_restore_validate_us")?.as_u64()?,
    ))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let report = parse_args(&args).and_then(|cfg| run(&cfg));
    match report {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_flags_and_rejects_nonsense() {
        let cfg = parse_args(&argv("--threads 2 --requests 10 --mix 1:1:1 --retries 5")).unwrap();
        assert_eq!(cfg.threads, 2);
        assert_eq!(cfg.requests, 10);
        assert_eq!(cfg.mix, (1, 1, 1));
        assert_eq!(cfg.retries, 5);
        assert_eq!(parse_args(&[]).unwrap().retries, 3);
        assert!(parse_args(&argv("--threads")).is_err());
        assert!(parse_args(&argv("--threads 0 --requests 5")).is_err());
        assert!(parse_args(&argv("--bogus 1")).is_err());
        assert!(parse_mix("0:0:0").is_err());
        assert!(parse_mix("1:2").is_err());

        let cfg = parse_args(&argv(
            "--arrival open --rate 500 --batch 8 --duration-ms 250 --sweep 2,4 --transport pool",
        ))
        .unwrap();
        assert_eq!(cfg.arrival, Arrival::Open);
        assert_eq!(cfg.rate, 500.0);
        assert_eq!(cfg.batch, 8);
        assert_eq!(cfg.duration_ms, Some(250));
        assert_eq!(cfg.sweep, vec![2, 4]);
        assert_eq!(cfg.transport, Transport::Pool);
        assert!(parse_args(&argv("--arrival open")).is_err());
        assert!(parse_args(&argv("--arrival sometimes --rate 1")).is_err());
        assert!(parse_args(&argv("--sweep 4,0")).is_err());
        assert!(parse_args(&argv("--transport carrier-pigeon")).is_err());
    }

    #[test]
    fn percentiles_pick_rank_order_statistics() {
        let mut samples = vec![50, 10, 40, 20, 30];
        assert_eq!(percentile_micros(&mut samples, 0.5), 30);
        assert_eq!(percentile_micros(&mut samples, 1.0), 50);
        assert_eq!(percentile_micros(&mut samples, 0.0), 10);
        assert_eq!(percentile_micros(&mut [], 0.5), 0);
    }

    #[test]
    fn end_to_end_against_an_in_process_server() {
        let cfg = Config {
            threads: 2,
            requests: 25,
            sets: 2,
            objects: 12,
            mix: (8, 1, 1),
            ..Config::default()
        };
        let report = run(&cfg).unwrap();
        assert!(report.contains("requests   : 50 (0 errors)"), "{report}");
        assert!(
            report.contains("5xx        : 500=0 503=0 504=0"),
            "{report}"
        );
        assert!(report.contains("shed rate  : 0.0%"), "{report}");
        assert!(report.contains("throughput"), "{report}");
        assert!(report.contains("server scan: threads="), "{report}");
        assert!(report.contains("groups_evaluated="), "{report}");
        assert!(report.contains("server arena: buffer_bytes="), "{report}");
        assert!(report.contains("segments_copied="), "{report}");
    }

    #[test]
    fn open_loop_batched_soak_reports_items() {
        let cfg = Config {
            threads: 2,
            sets: 2,
            objects: 12,
            mix: (0, 1, 1),
            arrival: Arrival::Open,
            rate: 200.0,
            batch: 4,
            duration_ms: Some(300),
            ..Config::default()
        };
        let report = run(&cfg).unwrap();
        assert!(
            report.contains("arrival    : open at 200 req/s"),
            "{report}"
        );
        assert!(report.contains("batch      : 4 items/request"), "{report}");
        assert!(report.contains("(0 errors)"), "{report}");
    }

    #[test]
    fn connection_sweep_prints_one_row_per_point() {
        let cfg = Config {
            requests: 10,
            sets: 2,
            objects: 12,
            mix: (1, 0, 0),
            sweep: vec![1, 2],
            ..Config::default()
        };
        let table = run(&cfg).unwrap();
        assert!(table.contains("conns  throughput"), "{table}");
        let rows: Vec<&str> = table.lines().skip(1).collect();
        assert_eq!(rows.len(), 2, "{table}");
        assert!(rows[0].starts_with("1 "), "{table}");
        assert!(rows[1].starts_with("2 "), "{table}");
    }
}
