//! `coldstart` — serving start-up latency: CSV rebuild vs snapshot restore.
//!
//! For each scale, synthetic GeoNames-style layers are written to CSV, a
//! dataset is built once from those CSVs (persisting a `.molq` snapshot),
//! and then start-up is timed both ways: rebuilding from the CSVs (the
//! Overlapper runs) and restoring the persisted snapshot (no Overlapper, no
//! index build). Emits a JSON report; this is the experiment behind
//! `BENCH_PR2.json`.
//!
//! ```text
//! cargo run --release -p molq-bench --bin coldstart -- \
//!     --objects 100,200,400 --repeat 3 --out BENCH_PR2.json
//! ```

use molq_datagen::{geonames::layer_object_set, GeoLayer};
use molq_geom::Mbr;
use molq_server::engine::{DatasetSpec, Engine, LoadOutcome};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

struct Config {
    /// Objects per layer, one benchmark row per entry.
    objects: Vec<usize>,
    /// Layers (object sets) per dataset.
    sets: usize,
    /// Timed repetitions per start-up mode (the minimum is reported).
    repeat: usize,
    /// Output file; stdout when absent.
    out: Option<PathBuf>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            objects: vec![100, 200, 400],
            sets: 3,
            repeat: 3,
            out: None,
        }
    }
}

fn parse_args(args: &[String]) -> Result<Config, String> {
    let mut cfg = Config::default();
    let mut i = 0;
    while i < args.len() {
        let key = args[i].as_str();
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("flag {key} needs a value"))?;
        match key {
            "--objects" => {
                cfg.objects = value
                    .split(',')
                    .map(|v| v.trim().parse().map_err(|e| format!("{key}: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--sets" => cfg.sets = value.parse().map_err(|e| format!("{key}: {e}"))?,
            "--repeat" => cfg.repeat = value.parse().map_err(|e| format!("{key}: {e}"))?,
            "--out" => cfg.out = Some(PathBuf::from(value)),
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 2;
    }
    if cfg.objects.is_empty() || cfg.sets == 0 || cfg.repeat == 0 {
        return Err("--objects, --sets, and --repeat must be positive".into());
    }
    Ok(cfg)
}

struct Row {
    objects_per_set: usize,
    ovrs: usize,
    snapshot_bytes: u64,
    rebuild_ms: f64,
    restore_ms: f64,
    /// MOVD-section decode split for the restore path: bulk lane copy vs
    /// structural validation, microseconds (from the engine's arena stats).
    restore_copy_us: u64,
    restore_validate_us: u64,
}

fn time_load(spec: &DatasetSpec, repeat: usize, want: LoadOutcome) -> (f64, usize, Engine) {
    let mut best = f64::INFINITY;
    let mut ovrs = 0;
    let mut last = Engine::new();
    for _ in 0..repeat {
        let engine = Engine::new();
        let t = Instant::now();
        let (snap, outcome) = engine
            .load_traced(spec.clone())
            .expect("benchmark load failed");
        let dt = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(outcome, want, "unexpected load path");
        ovrs = snap.index.len();
        best = best.min(dt);
        last = engine;
    }
    (best, ovrs, last)
}

fn run_scale(cfg: &Config, objects: usize) -> Row {
    let bounds = Mbr::new(0.0, 0.0, 1000.0, 1000.0);
    let dir = std::env::temp_dir().join(format!("molq_coldstart_{objects}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");

    let paths: Vec<PathBuf> = (0..cfg.sets)
        .map(|i| {
            let layer = GeoLayer::ALL[i % GeoLayer::ALL.len()];
            let set = layer_object_set(
                layer,
                objects,
                1.0 + i as f64 * 0.5,
                bounds,
                2014 + i as u64,
            );
            let path = dir.join(format!("layer{i}.csv"));
            let mut f = std::fs::File::create(&path).expect("csv create");
            molq_datagen::csv::write_csv(&set, &mut f).expect("csv write");
            path
        })
        .collect();

    let persisted = DatasetSpec {
        bounds: Some(bounds),
        snapshot_dir: Some(dir.clone()),
        ..DatasetSpec::new("bench", paths.clone())
    };
    let rebuild_only = DatasetSpec {
        snapshot_dir: None,
        ..persisted.clone()
    };

    // Prime: one build persists the snapshot for the restore path.
    Engine::new()
        .load_traced(persisted.clone())
        .expect("prime build failed");
    let snapshot_bytes = std::fs::metadata(persisted.snapshot_file().unwrap())
        .expect("snapshot file")
        .len();

    let (rebuild_ms, ovrs, _) = time_load(&rebuild_only, cfg.repeat, LoadOutcome::BuiltFromCsv);
    let (restore_ms, _, engine) =
        time_load(&persisted, cfg.repeat, LoadOutcome::LoadedFromSnapshot);
    let arena = engine.arena_stats();

    Row {
        objects_per_set: objects,
        ovrs,
        snapshot_bytes,
        rebuild_ms,
        restore_ms,
        restore_copy_us: arena.last_restore_copy_micros,
        restore_validate_us: arena.last_restore_validate_micros,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_args(&args) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: coldstart [--objects n,n,..] [--sets n] [--repeat n] [--out file]");
            std::process::exit(1);
        }
    };

    let mut rows = Vec::new();
    for &objects in &cfg.objects {
        eprintln!("scale: {} sets x {objects} objects ...", cfg.sets);
        let row = run_scale(&cfg, objects);
        eprintln!(
            "  rebuild {:.1} ms, restore {:.2} ms ({:.0}x), {} OVRs, {} B snapshot",
            row.rebuild_ms,
            row.restore_ms,
            row.rebuild_ms / row.restore_ms,
            row.ovrs,
            row.snapshot_bytes
        );
        rows.push(row);
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"benchmark\": \"coldstart\",");
    let _ = writeln!(
        json,
        "  \"description\": \"serving start-up: CSV rebuild (MOVD Overlapper) vs molq-store snapshot restore; min of {} runs, milliseconds\",",
        cfg.repeat
    );
    let _ = writeln!(json, "  \"sets\": {},", cfg.sets);
    let _ = writeln!(json, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"objects_per_set\": {}, \"ovrs\": {}, \"snapshot_bytes\": {}, \
             \"csv_rebuild_ms\": {:.3}, \"snapshot_restore_ms\": {:.3}, \"speedup\": {:.1}, \
             \"restore_copy_us\": {}, \"restore_validate_us\": {}}}{}",
            r.objects_per_set,
            r.ovrs,
            r.snapshot_bytes,
            r.rebuild_ms,
            r.restore_ms,
            r.rebuild_ms / r.restore_ms,
            r.restore_copy_us,
            r.restore_validate_us,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    match &cfg.out {
        Some(path) => {
            std::fs::write(path, &json).expect("write report");
            eprintln!("wrote {}", path.display());
        }
        None => print!("{json}"),
    }

    let worst = rows
        .iter()
        .map(|r| r.rebuild_ms / r.restore_ms)
        .fold(f64::INFINITY, f64::min);
    eprintln!("minimum speedup across scales: {worst:.1}x");
}
