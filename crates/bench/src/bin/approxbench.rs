//! `approxbench` — construction + solve scaling of the ε-approximate mode.
//!
//! Builds the tiered pipeline's approximate MOVD over three Zipf-weighted
//! clustered layers at increasing object counts (default up to 500,000 per
//! layer — 1.5M objects total), solves over it, and certifies the measured
//! error at every scale:
//!
//! - at the small **exact check** scale the answer is compared against the
//!   exact pipeline directly: `approx_cost / exact_opt - 1 ≤ ε`;
//! - at every benchmark scale (where exact construction is infeasible —
//!   that is the point) the true aggregate cost of the reported location
//!   (the MWGD oracle, a linear scan over all objects) is compared against
//!   a certified lower bound on the exact optimum derived from an
//!   independent *reference* build at a finer ε_ref: since
//!   `ref_cost ≤ (1+ε_ref)·opt`, the quantity
//!   `mwgd(loc)·(1+ε_ref)/ref_cost - 1` over-estimates the true relative
//!   error, and must still come in at or below the configured ε.
//!
//! Any uncertified leaf (safety-cap forcing), certificate violation, or
//! error above ε exits non-zero. The measurements land in a JSON report:
//!
//! ```text
//! cargo run --release -p molq-bench --bin approxbench -- --out BENCH_PR10.json
//! ```
//!
//! `--max-objects` drops the scales above the cap — the CI smoke run uses
//! a small cap so the full certification logic runs in seconds.

use molq_core::prelude::*;
use molq_datagen::{layer_object_set_zipf, GeoLayer};
use molq_fw::StoppingRule;
use molq_geom::Mbr;
use std::fmt::Write as _;
use std::time::Instant;

const SETS: usize = 3;
const SPACE: f64 = 10_000.0;
/// Objects per layer at the exact cross-check scale: large enough to be a
/// real diagram, small enough that exact clipping stays cheap.
const EXACT_CHECK_OBJECTS: usize = 200;

struct Measurement {
    objects: usize,
    build_s: f64,
    solve_s: f64,
    ovrs: usize,
    leaves: u64,
    depth: u32,
    forced: u64,
    cost: f64,
    realized: f64,
    ref_cost: f64,
    measured_err: f64,
}

fn build_query(objects: usize, zipf: f64) -> MolqQuery {
    let bounds = Mbr::new(0.0, 0.0, SPACE, SPACE);
    let sets = (0..SETS)
        .map(|i| {
            layer_object_set_zipf(
                GeoLayer::ALL[i % GeoLayer::ALL.len()],
                objects,
                1.0 + i as f64 * 0.5,
                bounds,
                7_000 + i as u64,
                zipf,
            )
        })
        .collect();
    MolqQuery::new(sets, bounds).with_rule(StoppingRule::Either(1e-6, 100_000))
}

fn build_and_solve(
    query: &MolqQuery,
    epsilon: f64,
    exec: ExecConfig,
) -> Result<(MovdAnswer, BuildMeta, usize, f64, f64), MolqError> {
    let t0 = Instant::now();
    let (movd, meta) = build_movd(
        &query.sets,
        query.bounds,
        Boundary::Rrb,
        &BuildPlan::approx(epsilon),
        exec,
    )?;
    let build_s = t0.elapsed().as_secs_f64();
    let ovrs = movd.len();
    let t1 = Instant::now();
    let open = CancelToken::new();
    let answer = solve_prebuilt_cancellable_with(query, &movd, &open, exec)?;
    let solve_s = t1.elapsed().as_secs_f64();
    Ok((answer, meta, ovrs, build_s, solve_s))
}

/// Exact cross-check at a feasible scale: the approximate answer's true
/// cost must be within (1+ε) of the exact optimum, measured directly.
fn exact_check(epsilon: f64, zipf: f64, exec: ExecConfig) -> Result<(f64, f64, f64), MolqError> {
    let query = build_query(EXACT_CHECK_OBJECTS, zipf);
    let (exact_movd, _) = build_movd(
        &query.sets,
        query.bounds,
        Boundary::Rrb,
        &BuildPlan::exact(),
        exec,
    )?;
    let open = CancelToken::new();
    let exact = solve_prebuilt_cancellable_with(&query, &exact_movd, &open, exec)?;
    let (approx, _, _, _, _) = build_and_solve(&query, epsilon, exec)?;
    let realized = mwgd(approx.location, &query);
    let err = realized / exact.cost - 1.0;
    Ok((exact.cost, realized, err))
}

fn run(
    scales: &[usize],
    epsilon: f64,
    epsilon_ref: f64,
    zipf: f64,
) -> Result<(String, Vec<Measurement>, f64, bool), MolqError> {
    let exec = ExecConfig::default();
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());

    let (exact_cost, exact_realized, exact_err) = exact_check(epsilon, zipf, exec)?;
    eprintln!(
        "exact check ({EXACT_CHECK_OBJECTS}/set): exact {exact_cost:.4}, \
         approx realized {exact_realized:.4}, err {exact_err:.2e}"
    );

    let mut measurements = Vec::new();
    for &objects in scales {
        let query = build_query(objects, zipf);
        let (answer, meta, ovrs, build_s, solve_s) = build_and_solve(&query, epsilon, exec)?;
        let realized = mwgd(answer.location, &query);

        // Independent certified lower bound on the exact optimum from a
        // finer reference build: opt ≥ ref_cost / (1 + ε_ref).
        let (reference, ref_meta, _, ref_build_s, _) = build_and_solve(&query, epsilon_ref, exec)?;
        let measured_err = realized * (1.0 + epsilon_ref) / reference.cost - 1.0;
        eprintln!(
            "{objects}/set: build {build_s:.2}s solve {solve_s:.2}s ({ovrs} OVRs, \
             {} leaves, depth {}, {} forced) err {measured_err:.2e} \
             (ref ε {epsilon_ref}: build {ref_build_s:.2}s, {} forced)",
            meta.leaves, meta.refinement_depth, meta.forced_leaves, ref_meta.forced_leaves
        );
        measurements.push(Measurement {
            objects,
            build_s,
            solve_s,
            ovrs,
            leaves: meta.leaves,
            depth: meta.refinement_depth,
            forced: meta.forced_leaves + ref_meta.forced_leaves,
            cost: answer.cost,
            realized,
            ref_cost: reference.cost,
            measured_err,
        });
    }

    let max_err = measurements
        .iter()
        .map(|m| m.measured_err)
        .fold(exact_err, f64::max);
    let ok = max_err <= epsilon && measurements.iter().all(|m| m.forced == 0);

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"approxbench\",");
    let _ = writeln!(json, "  \"sets\": {SETS},");
    let _ = writeln!(json, "  \"epsilon\": {epsilon},");
    let _ = writeln!(json, "  \"epsilon_ref\": {epsilon_ref},");
    let _ = writeln!(json, "  \"zipf_s\": {zipf},");
    let _ = writeln!(json, "  \"available_parallelism\": {cores},");
    let _ = writeln!(
        json,
        "  \"note\": \"measured_err over-estimates the true relative error: it compares the \
         answer's true aggregate cost against a certified lower bound from an independent \
         finer-epsilon reference build\","
    );
    let _ = writeln!(json, "  \"exact_check\": {{");
    let _ = writeln!(json, "    \"objects_per_set\": {EXACT_CHECK_OBJECTS},");
    let _ = writeln!(json, "    \"exact_cost\": {exact_cost},");
    let _ = writeln!(json, "    \"approx_realized_cost\": {exact_realized},");
    let _ = writeln!(json, "    \"measured_err\": {exact_err},");
    let _ = writeln!(json, "    \"ok\": {}", exact_err <= epsilon);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, m) in measurements.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"objects_per_set\": {}, \"build_s\": {:.6}, \"solve_s\": {:.6}, \
             \"ovrs\": {}, \"leaves\": {}, \"refinement_depth\": {}, \"forced_leaves\": {}, \
             \"solve_cost\": {}, \"realized_cost\": {}, \"ref_cost\": {}, \
             \"measured_err\": {}}}{}",
            m.objects,
            m.build_s,
            m.solve_s,
            m.ovrs,
            m.leaves,
            m.depth,
            m.forced,
            m.cost,
            m.realized,
            m.ref_cost,
            m.measured_err,
            if i + 1 < measurements.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"max_measured_err\": {max_err},");
    let _ = writeln!(json, "  \"err_ok\": {ok}");
    let _ = writeln!(json, "}}");
    Ok((json, measurements, max_err, ok))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scales: Vec<usize> = vec![125_000, 250_000, 500_000];
    let mut epsilon = 0.5f64;
    let mut zipf = 0.5f64;
    let mut max_objects: Option<usize> = None;
    let mut out = "BENCH_PR10.json".to_string();
    let mut i = 0;
    while i < args.len() {
        let value = match args.get(i + 1) {
            Some(v) => v,
            None => {
                eprintln!("flag {} needs a value", args[i]);
                std::process::exit(2);
            }
        };
        match args[i].as_str() {
            "--scales" => {
                scales = match value.split(',').map(str::parse).collect() {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("--scales: {e}");
                        std::process::exit(2);
                    }
                }
            }
            "--epsilon" => match value.parse() {
                Ok(e) if e > 0.0 => epsilon = e,
                _ => {
                    eprintln!("--epsilon must be a positive f64");
                    std::process::exit(2);
                }
            },
            "--zipf" => match value.parse() {
                Ok(s) if s >= 0.0 => zipf = s,
                _ => {
                    eprintln!("--zipf must be a non-negative f64");
                    std::process::exit(2);
                }
            },
            "--max-objects" => match value.parse() {
                Ok(n) => max_objects = Some(n),
                Err(e) => {
                    eprintln!("--max-objects: {e}");
                    std::process::exit(2);
                }
            },
            "--out" => out = value.clone(),
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    if let Some(cap) = max_objects {
        scales.retain(|&s| s <= cap);
        if scales.is_empty() {
            scales = vec![cap];
        }
    }
    // The reference build must be meaningfully finer than the mode under
    // test for its lower bound to have any bite.
    let epsilon_ref = epsilon / 5.0;

    match run(&scales, epsilon, epsilon_ref, zipf) {
        Ok((json, _, max_err, ok)) => {
            if !ok {
                eprintln!(
                    "FAIL: measured error {max_err:.3e} exceeds ε = {epsilon}, or a build \
                     hit the safety caps (uncertified leaves)"
                );
                // Still write the report so the failure is inspectable.
                let _ = std::fs::write(&out, &json);
                std::process::exit(1);
            }
            if let Err(e) = std::fs::write(&out, &json) {
                eprintln!("{out}: {e}");
                std::process::exit(1);
            }
            println!("wrote {out}");
            print!("{json}");
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_certifies_and_emits_json() {
        let (json, measurements, max_err, ok) = run(&[250], 0.25, 0.1, 0.5).unwrap();
        assert_eq!(measurements.len(), 1);
        assert!(ok, "measured error {max_err} above ε:\n{json}");
        assert!(measurements[0].ovrs > 0);
        assert!(measurements[0].leaves >= measurements[0].ovrs as u64);
        assert!(measurements[0].forced == 0);
        for key in [
            "\"bench\": \"approxbench\"",
            "\"exact_check\"",
            "\"measured_err\"",
            "\"max_measured_err\"",
            "\"err_ok\": true",
        ] {
            assert!(json.contains(key), "missing {key}:\n{json}");
        }
    }
}
