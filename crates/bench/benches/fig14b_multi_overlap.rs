//! Fig 14(b) — execution time of overlapping 2–5 Voronoi diagrams at a
//! fixed per-type object count, RRB vs MBRB.
//!
//! Paper shape: MBRB wins at 2–3 types; past 4 types the false-positive
//! cascade makes RRB (at the same parameters, "RRB*") faster.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use molq_bench::experiments::overlap_k_layers;
use molq_core::Boundary;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14b_multi_overlap");
    g.sample_size(10);
    let n = 2_000usize;
    for types in [2usize, 3, 4, 5] {
        g.bench_with_input(BenchmarkId::new("rrb", types), &types, |b, &k| {
            b.iter(|| overlap_k_layers(k, n, Boundary::Rrb))
        });
        g.bench_with_input(BenchmarkId::new("mbrb", types), &types, |b, &k| {
            b.iter(|| overlap_k_layers(k, n, Boundary::Mbrb))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
