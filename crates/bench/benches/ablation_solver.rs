//! Ablation: Vardi–Zhang iteration alone vs the Newton-polished hybrid, at
//! loose and tight error bounds. The hybrid should dominate at ε ≤ 1e-9
//! where linear convergence pays dozens of extra iterations per problem.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use molq_bench::experiments::{bounds, SEED};
use molq_datagen::workloads::random_fw_groups;
use molq_fw::{solve, solve_hybrid, StoppingRule};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_solver");
    g.sample_size(10);
    let groups = random_fw_groups(200, 8, bounds(), SEED);
    for eps in [1e-3, 1e-9, 1e-12] {
        let rule = StoppingRule::Either(eps, 100_000);
        let id = format!("{eps:.0e}");
        g.bench_with_input(
            BenchmarkId::new("vardi_zhang", &id),
            &groups,
            |b, groups| {
                b.iter(|| {
                    groups
                        .iter()
                        .map(|gr| solve(gr, rule).cost)
                        .fold(f64::INFINITY, f64::min)
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("newton_hybrid", &id),
            &groups,
            |b, groups| {
                b.iter(|| {
                    groups
                        .iter()
                        .map(|gr| solve_hybrid(gr, rule).cost)
                        .fold(f64::INFINITY, f64::min)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
