//! Fig 9 — MOLQ with four object types (ε = 0.001): the RRB solution is the
//! fastest; MBRB pays for its false-positive OVRs in the optimizer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use molq_bench::experiments::{bounds, SEED};
use molq_core::prelude::*;
use molq_datagen::workloads::standard_query;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig09_four_types");
    g.sample_size(10);
    for n in [6usize, 10, 14] {
        let q = standard_query(4, n, bounds(), SEED);
        g.bench_with_input(BenchmarkId::new("ssc", n), &q, |b, q| {
            b.iter(|| solve_ssc(q).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("rrb", n), &q, |b, q| {
            b.iter(|| solve_rrb(q).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("mbrb", n), &q, |b, q| {
            b.iter(|| solve_mbrb(q).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
