//! Fig 10 — the cost-bound batch Fermat–Weber solver vs the sequential
//! baseline, sweeping batch size and error bound ε.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use molq_bench::experiments::{bounds, SEED};
use molq_datagen::workloads::random_fw_groups;
use molq_fw::{solve_cost_bound, solve_sequential, StoppingRule};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_cost_bound");
    g.sample_size(10);
    for count in [1_000usize, 10_000] {
        let groups = random_fw_groups(count, 5, bounds(), SEED);
        for eps in [1e-2, 1e-3] {
            let rule = StoppingRule::Either(eps, 100_000);
            let id = format!("{count}@{eps:.0e}");
            g.bench_with_input(BenchmarkId::new("original", &id), &groups, |b, groups| {
                b.iter(|| solve_sequential(groups, rule).unwrap())
            });
            g.bench_with_input(BenchmarkId::new("cost_bound", &id), &groups, |b, groups| {
                b.iter(|| solve_cost_bound(groups, rule).unwrap())
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
