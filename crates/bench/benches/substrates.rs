//! Substrate benchmarks: the building blocks the paper's pipeline rests on —
//! Voronoi construction (sequential and parallel), Delaunay triangulation,
//! and the spatial indexes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use molq_bench::experiments::{bounds, SEED};
use molq_datagen::geonames::synthetic_layer;
use molq_datagen::GeoLayer;
use molq_geom::Mbr;
use molq_index::{KdTree, RTree};
use molq_voronoi::{Delaunay, OrdinaryVoronoi};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrates");
    g.sample_size(10);

    for n in [5_000usize, 20_000] {
        let pts = synthetic_layer(GeoLayer::Streams, n, bounds(), SEED);
        g.bench_with_input(BenchmarkId::new("voronoi_build", n), &pts, |b, pts| {
            b.iter(|| OrdinaryVoronoi::build(pts, bounds()).unwrap())
        });
        g.bench_with_input(
            BenchmarkId::new("voronoi_build_parallel4", n),
            &pts,
            |b, pts| b.iter(|| OrdinaryVoronoi::build_parallel(pts, bounds(), 4).unwrap()),
        );
        g.bench_with_input(BenchmarkId::new("delaunay_build", n), &pts, |b, pts| {
            b.iter(|| Delaunay::build(pts).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("kdtree_build", n), &pts, |b, pts| {
            b.iter(|| KdTree::from_points(pts))
        });
        let entries: Vec<(Mbr, usize)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (Mbr::of_point(*p).inflate(50.0), i))
            .collect();
        g.bench_with_input(BenchmarkId::new("rtree_bulk_load", n), &entries, |b, e| {
            b.iter(|| RTree::bulk_load(e))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
