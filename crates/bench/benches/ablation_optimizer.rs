//! Ablation: which part of the cost-bound optimizer (Algorithm 5) buys the
//! speedup — the exact two-point prefilter, the per-iteration lower-bound
//! prune, or both? (DESIGN.md design-choice ablation.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use molq_bench::experiments::{bounds, SEED};
use molq_datagen::workloads::random_fw_groups;
use molq_fw::{solve_cost_bound_with, CostBoundConfig, StoppingRule};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_optimizer");
    g.sample_size(10);
    let groups = random_fw_groups(5_000, 5, bounds(), SEED);
    let rule = StoppingRule::Either(1e-3, 100_000);
    let variants = [
        (
            "neither",
            CostBoundConfig {
                prefilter: false,
                prune: false,
            },
        ),
        (
            "prefilter_only",
            CostBoundConfig {
                prefilter: true,
                prune: false,
            },
        ),
        (
            "prune_only",
            CostBoundConfig {
                prefilter: false,
                prune: true,
            },
        ),
        (
            "both",
            CostBoundConfig {
                prefilter: true,
                prune: true,
            },
        ),
    ];
    for (name, cfg) in variants {
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, &cfg| {
            b.iter(|| solve_cost_bound_with(&groups, rule, cfg).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
