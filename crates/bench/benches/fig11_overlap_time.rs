//! Fig 11 — execution time of overlapping two ordinary Voronoi diagrams,
//! RRB vs MBRB (diagram construction excluded, as in the paper).
//!
//! Figs 12 and 13 (OVR counts, memory) are deterministic functions of the
//! same runs; the `experiments` binary prints them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use molq_bench::experiments::{bounds, SEED};
use molq_core::sweep::overlap;
use molq_core::{Boundary, Movd};
use molq_datagen::geonames::layer_object_set;
use molq_datagen::GeoLayer;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_overlap_time");
    g.sample_size(10);
    for n in [2_000usize, 5_000, 10_000] {
        let stm = layer_object_set(GeoLayer::Streams, n, 1.0, bounds(), SEED);
        let ch = layer_object_set(GeoLayer::Churches, n, 1.0, bounds(), SEED);
        let a = Movd::basic(&stm, 0, bounds()).unwrap();
        let b = Movd::basic(&ch, 1, bounds()).unwrap();
        g.bench_with_input(BenchmarkId::new("rrb", n), &(&a, &b), |bch, (a, b)| {
            bch.iter(|| overlap(a, b, Boundary::Rrb))
        });
        g.bench_with_input(BenchmarkId::new("mbrb", n), &(&a, &b), |bch, (a, b)| {
            bch.iter(|| overlap(a, b, Boundary::Mbrb))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
