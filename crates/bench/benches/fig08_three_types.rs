//! Fig 8 — MOLQ with three object types: SSC vs RRB vs MBRB execution time.
//!
//! Paper shape: both MOVD solutions beat SSC by one to two orders of
//! magnitude, widening with the object count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use molq_bench::experiments::{bounds, SEED};
use molq_core::prelude::*;
use molq_datagen::workloads::standard_query;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig08_three_types");
    g.sample_size(10);
    for n in [10usize, 20, 40] {
        let q = standard_query(3, n, bounds(), SEED);
        g.bench_with_input(BenchmarkId::new("ssc", n), &q, |b, q| {
            b.iter(|| solve_ssc(q).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("rrb", n), &q, |b, q| {
            b.iter(|| solve_rrb(q).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("mbrb", n), &q, |b, q| {
            b.iter(|| solve_mbrb(q).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
