//! Exact Fermat–Weber cases: one/two points, collinear sets, three points.

use crate::types::{cost, FwSolution, WeightedPoint};
use molq_geom::robust::orient2d;
use molq_geom::Point;

/// Exact optimum for two weighted points.
///
/// The cost `w₁·d(q,p₁) + w₂·d(q,p₂)` restricted to the segment is linear in
/// the position, so the optimum sits at the endpoint with the larger weight
/// (cost `min(w₁,w₂)·d(p₁,p₂)`); off-segment locations are never better by
/// the triangle inequality. Equal weights make the whole segment optimal; the
/// first point is returned.
pub fn two_point(a: WeightedPoint, b: WeightedPoint) -> FwSolution {
    let location = if a.weight >= b.weight { a.loc } else { b.loc };
    FwSolution {
        location,
        cost: a.weight.min(b.weight) * a.loc.dist(b.loc),
        iterations: 0,
        exact: true,
    }
}

/// `true` when all points are collinear (exact orientation test).
pub fn is_collinear(pts: &[WeightedPoint]) -> bool {
    if pts.len() < 3 {
        return true;
    }
    // Find two distinct anchor points, then test the rest.
    let a = pts[0].loc;
    let Some(b) = pts.iter().map(|p| p.loc).find(|&p| p != a) else {
        return true; // all identical
    };
    pts.iter().all(|p| orient2d(a, b, p.loc) == 0.0)
}

/// Exact optimum for collinear points: the weighted median along the line
/// (`O(n log n)`, per the paper's reference to the linear-time solvable
/// collinear case).
///
/// Panics if the points are not collinear (`debug_assert`).
pub fn collinear(pts: &[WeightedPoint]) -> FwSolution {
    debug_assert!(is_collinear(pts), "points must be collinear");
    assert!(!pts.is_empty());
    if pts.len() == 1 {
        return FwSolution {
            location: pts[0].loc,
            cost: 0.0,
            iterations: 0,
            exact: true,
        };
    }
    // Direction of the line.
    let a = pts[0].loc;
    let dir = pts
        .iter()
        .map(|p| p.loc)
        .find(|&p| p != a)
        .map(|b| (b - a).normalized().unwrap())
        .unwrap_or(Point::new(1.0, 0.0));

    // Project, sort, take the weighted median.
    let mut proj: Vec<(f64, f64, Point)> = pts
        .iter()
        .map(|p| ((p.loc - a).dot(dir), p.weight, p.loc))
        .collect();
    proj.sort_by(|x, y| x.0.total_cmp(&y.0));
    let total: f64 = proj.iter().map(|e| e.1).sum();
    let mut acc = 0.0;
    let mut loc = proj[proj.len() - 1].2;
    for &(_, w, p) in &proj {
        acc += w;
        if acc >= total * 0.5 {
            loc = p;
            break;
        }
    }
    FwSolution {
        location: loc,
        cost: cost(loc, pts),
        iterations: 0,
        exact: true,
    }
}

/// Whether vertex `i` of a three-point instance is optimal: the pull of the
/// other two points must not exceed the vertex's own weight,
/// `‖Σ_{j≠i} wⱼ·uⱼ‖ ≤ wᵢ` with `uⱼ` unit vectors toward the other points.
fn vertex_is_optimal(pts: &[WeightedPoint; 3], i: usize) -> bool {
    let p = pts[i];
    let mut pull = Point::ORIGIN;
    for (j, q) in pts.iter().enumerate() {
        if j == i {
            continue;
        }
        match (q.loc - p.loc).normalized() {
            Some(u) => pull = pull + u * q.weight,
            // Coincident point: its pull direction is arbitrary but its
            // magnitude adds fully; model as full opposing weight.
            None => return q.weight <= p.weight,
        }
    }
    pull.norm() <= p.weight
}

/// Three-point weighted Fermat–Weber.
///
/// Performs the exact vertex-optimality test (constant time, the case the
/// paper cites from Jalal & Krarup); interior optima are found by driving the
/// Vardi–Zhang iteration to machine precision, which matches the geometric
/// construction to ~1e-12 of the cost.
pub fn three_point(pts: &[WeightedPoint; 3]) -> FwSolution {
    for i in 0..3 {
        if vertex_is_optimal(pts, i) {
            return FwSolution {
                location: pts[i].loc,
                cost: cost(pts[i].loc, &pts[..]),
                iterations: 0,
                exact: true,
            };
        }
    }
    // Interior optimum: iterate to machine precision.
    let sol = crate::weiszfeld::solve_from(
        centroid(&pts[..]),
        &pts[..],
        crate::types::StoppingRule::Either(1e-14, 10_000),
    );
    FwSolution { exact: true, ..sol }
}

/// Weighted centroid — the iteration's default starting location.
pub fn centroid(pts: &[WeightedPoint]) -> Point {
    let total: f64 = pts.iter().map(|p| p.weight).sum();
    let sum = pts
        .iter()
        .fold(Point::ORIGIN, |acc, p| acc + p.loc * p.weight);
    sum / total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wp(x: f64, y: f64, w: f64) -> WeightedPoint {
        WeightedPoint::new(Point::new(x, y), w)
    }

    #[test]
    fn two_point_goes_to_heavier() {
        let s = two_point(wp(0.0, 0.0, 3.0), wp(4.0, 0.0, 1.0));
        assert_eq!(s.location, Point::new(0.0, 0.0));
        assert!((s.cost - 4.0).abs() < 1e-12);
        let s = two_point(wp(0.0, 0.0, 1.0), wp(4.0, 0.0, 3.0));
        assert_eq!(s.location, Point::new(4.0, 0.0));
        assert!((s.cost - 4.0).abs() < 1e-12);
    }

    #[test]
    fn collinear_detection() {
        assert!(is_collinear(&[wp(0.0, 0.0, 1.0), wp(1.0, 1.0, 1.0)]));
        assert!(is_collinear(&[
            wp(0.0, 0.0, 1.0),
            wp(1.0, 1.0, 1.0),
            wp(5.0, 5.0, 2.0)
        ]));
        assert!(!is_collinear(&[
            wp(0.0, 0.0, 1.0),
            wp(1.0, 1.0, 1.0),
            wp(1.0, 0.0, 1.0)
        ]));
        // All identical points are collinear.
        assert!(is_collinear(&[
            wp(2.0, 2.0, 1.0),
            wp(2.0, 2.0, 1.0),
            wp(2.0, 2.0, 1.0)
        ]));
    }

    #[test]
    fn collinear_median_unweighted() {
        // Five equally weighted points on a line: the median (third) wins.
        let pts: Vec<WeightedPoint> = (0..5).map(|i| wp(i as f64, 0.0, 1.0)).collect();
        let s = collinear(&pts);
        assert_eq!(s.location, Point::new(2.0, 0.0));
        assert!((s.cost - (2.0 + 1.0 + 0.0 + 1.0 + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn collinear_median_weighted() {
        // A heavy endpoint drags the optimum to itself.
        let pts = vec![wp(0.0, 0.0, 10.0), wp(1.0, 0.0, 1.0), wp(2.0, 0.0, 1.0)];
        let s = collinear(&pts);
        assert_eq!(s.location, Point::new(0.0, 0.0));
    }

    #[test]
    fn collinear_on_diagonal_line() {
        let pts = vec![wp(0.0, 0.0, 1.0), wp(1.0, 2.0, 1.0), wp(2.0, 4.0, 1.0)];
        let s = collinear(&pts);
        assert_eq!(s.location, Point::new(1.0, 2.0));
    }

    #[test]
    fn equilateral_unweighted_optimum_is_fermat_point() {
        // Equilateral triangle with unit weights: the Fermat point is the
        // centroid.
        let h = 3.0_f64.sqrt() / 2.0;
        let pts = [wp(0.0, 0.0, 1.0), wp(1.0, 0.0, 1.0), wp(0.5, h, 1.0)];
        let s = three_point(&pts);
        let c = Point::new(0.5, h / 3.0);
        assert!(s.location.dist(c) < 1e-7, "got {}", s.location);
    }

    #[test]
    fn dominant_weight_pins_vertex() {
        // w₀ ≥ w₁ + w₂ always pins the optimum at p₀.
        let pts = [wp(0.0, 0.0, 5.0), wp(10.0, 0.0, 2.0), wp(0.0, 10.0, 2.0)];
        let s = three_point(&pts);
        assert_eq!(s.location, Point::new(0.0, 0.0));
        assert!(s.exact);
        assert_eq!(s.iterations, 0);
    }

    #[test]
    fn obtuse_unweighted_vertex_case() {
        // An angle ≥ 120° pins the unweighted Fermat point at that vertex.
        let pts = [wp(0.0, 0.0, 1.0), wp(10.0, 0.1, 1.0), wp(-10.0, 0.1, 1.0)];
        let s = three_point(&pts);
        assert_eq!(s.location, Point::new(0.0, 0.0));
    }

    #[test]
    fn three_point_beats_grid_scan() {
        // The reported optimum must not be worse than any point of a dense
        // grid scan.
        let pts = [wp(0.0, 0.0, 1.0), wp(4.0, 0.0, 2.0), wp(1.0, 3.0, 1.5)];
        let s = three_point(&pts);
        let mut best = f64::INFINITY;
        for i in 0..=80 {
            for j in 0..=80 {
                let q = Point::new(i as f64 * 0.05, j as f64 * 0.05);
                best = best.min(cost(q, &pts[..]));
            }
        }
        assert!(s.cost <= best + 1e-6, "solver {} vs grid {}", s.cost, best);
    }

    #[test]
    fn centroid_is_weighted() {
        let c = centroid(&[wp(0.0, 0.0, 1.0), wp(4.0, 0.0, 3.0)]);
        assert_eq!(c, Point::new(3.0, 0.0));
    }
}
