//! Fermat–Weber solvers for the MOLQ reproduction.
//!
//! The paper's *Optimizer* (framework step 3) reduces every overlapped
//! Voronoi region to a weighted Fermat–Weber problem: find the point
//! minimising `Σ wᵢ · d(q, pᵢ)`. This crate implements
//!
//! * exact solutions for the cases the paper lists as solvable —
//!   one and two points, any collinear configuration (weighted 1-D median),
//!   and the three-point vertex-optimality test ([`exact`]),
//! * the iterative approach of Weiszfeld with the Vardi–Zhang modification
//!   that survives iterates landing exactly on data points ([`weiszfeld`]),
//! * the per-axis weighted-median **lower bound** of Eq. 10 used by the
//!   ε stopping rule ([`weiszfeld::lower_bound`]),
//! * the **cost-bound batch solver** of Algorithm 5, which shares a global
//!   upper bound across many Fermat–Weber problems and abandons iterations
//!   whose lower bound already exceeds it ([`batch`]).

pub mod batch;
pub mod exact;
pub mod newton;
pub mod types;
pub mod weiszfeld;

pub use batch::{
    solve_cost_bound, solve_cost_bound_with, solve_group_bounded, solve_group_bounded_with,
    solve_sequential, BatchStats, CostBoundConfig, GroupOutcome,
};
pub use newton::solve_hybrid;
pub use types::{cost, FwSolution, StoppingRule, WeightedPoint};
pub use weiszfeld::{lower_bound, solve, vardi_zhang_step};
