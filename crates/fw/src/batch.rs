//! Batched Fermat–Weber solving: the sequential baseline and the cost-bound
//! approach (Algorithm 5 of the paper).

use crate::exact;
use crate::types::{cost, FwSolution, StoppingRule, WeightedPoint};
use crate::weiszfeld::{lower_bound, vardi_zhang_step};
use molq_geom::Point;

/// Statistics from a batch solve, used by the Fig 10 experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Groups solved through the exact closed-form cases.
    pub exact_groups: usize,
    /// Groups skipped by the two-point prefilter (lines 9–12 of Algorithm 5).
    pub prefiltered_groups: usize,
    /// Groups whose iteration was abandoned by the lower-bound prune
    /// (line 16, `Lbound ≥ Cbound`).
    pub pruned_groups: usize,
    /// Total iterations performed across all groups.
    pub iterations: usize,
}

/// Result of a batch solve: the best location over all groups plus counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchSolution {
    /// Best location found.
    pub location: Point,
    /// Its cost (within the group that produced it).
    pub cost: f64,
    /// Index of the winning group.
    pub group: usize,
    /// Work counters.
    pub stats: BatchStats,
}

/// The baseline ("Original" in Fig 10): solve every group to the stopping
/// rule independently and keep the best.
pub fn solve_sequential(
    groups: &[Vec<WeightedPoint>],
    rule: StoppingRule,
) -> Option<BatchSolution> {
    let mut best: Option<BatchSolution> = None;
    let mut stats = BatchStats::default();
    for (gi, g) in groups.iter().enumerate() {
        if g.is_empty() {
            continue;
        }
        let sol = crate::weiszfeld::solve(g, rule);
        stats.iterations += sol.iterations;
        if sol.exact {
            stats.exact_groups += 1;
        }
        if best.map(|b| sol.cost < b.cost).unwrap_or(true) {
            best = Some(BatchSolution {
                location: sol.location,
                cost: sol.cost,
                group: gi,
                stats,
            });
        }
    }
    best.map(|mut b| {
        b.stats = stats;
        b
    })
}

/// Outcome of [`solve_group_bounded`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GroupOutcome {
    /// Solved to the stopping rule; the cost includes the group's additive
    /// constant.
    Solved(FwSolution),
    /// Skipped before any iteration by the two-point prefilter.
    Prefiltered,
    /// Iteration abandoned by the lower-bound prune (`Lbound ≥ Cbound`).
    Pruned,
}

/// Which parts of the cost-bound machinery are active — used by the
/// ablation benches to isolate the contribution of each filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostBoundConfig {
    /// Apply the exact two-point prefilter before iterating (lines 9–12).
    pub prefilter: bool,
    /// Apply the per-iteration lower-bound prune (line 16).
    pub prune: bool,
}

impl Default for CostBoundConfig {
    fn default() -> Self {
        CostBoundConfig {
            prefilter: true,
            prune: true,
        }
    }
}

/// Solves one Fermat–Weber group against a shared global bound `cbound`
/// (lines 4–17 of Algorithm 5), updating `stats`.
///
/// `constant` is an additive cost offset (non-negative), arising from
/// additive object-weight functions; the prefilter, the prune, and the
/// returned costs all include it.
pub fn solve_group_bounded(
    g: &[WeightedPoint],
    constant: f64,
    rule: StoppingRule,
    cbound: f64,
    stats: &mut BatchStats,
) -> GroupOutcome {
    solve_group_bounded_with(g, constant, rule, cbound, stats, CostBoundConfig::default())
}

/// [`solve_group_bounded`] with explicit filter configuration.
pub fn solve_group_bounded_with(
    g: &[WeightedPoint],
    constant: f64,
    rule: StoppingRule,
    cbound: f64,
    stats: &mut BatchStats,
    config: CostBoundConfig,
) -> GroupOutcome {
    debug_assert!(constant >= 0.0);
    let offset = |mut s: FwSolution| {
        s.cost += constant;
        s
    };
    if g.len() <= 2 {
        stats.exact_groups += 1;
        return GroupOutcome::Solved(offset(crate::weiszfeld::solve(g, rule)));
    }
    if exact::is_collinear(g) {
        stats.exact_groups += 1;
        return GroupOutcome::Solved(offset(exact::collinear(g)));
    }
    if g.len() == 3 {
        stats.exact_groups += 1;
        return GroupOutcome::Solved(offset(exact::three_point(&[g[0], g[1], g[2]])));
    }
    // Two-point prefilter: the pair optimum cost (plus the full constant)
    // lower-bounds the group cost at any location.
    if config.prefilter {
        let pair = exact::two_point(g[0], g[1]);
        if pair.cost + constant > cbound {
            stats.prefiltered_groups += 1;
            return GroupOutcome::Prefiltered;
        }
    }
    // Iterate with the lower-bound prune.
    let eps = rule.epsilon();
    let max_iters = rule.max_iterations();
    let mut q = exact::centroid(g);
    let mut iters = 0usize;
    while iters < max_iters {
        let next = vardi_zhang_step(q, g);
        iters += 1;
        let moved = next.dist(q);
        q = next;
        let lb = lower_bound(q, g) + constant;
        if config.prune && lb >= cbound {
            stats.iterations += iters;
            stats.pruned_groups += 1;
            return GroupOutcome::Pruned;
        }
        if let Some(eps) = eps {
            let c = cost(q, g) + constant;
            if lb > 0.0 && (c - lb) / lb <= eps {
                break;
            }
        }
        if moved <= 1e-15 * (1.0 + q.norm()) {
            break;
        }
    }
    stats.iterations += iters;
    GroupOutcome::Solved(FwSolution {
        location: q,
        cost: cost(q, g) + constant,
        iterations: iters,
        exact: false,
    })
}

/// Algorithm 5: the cost-bound approach.
///
/// Maintains a global upper bound `Cbound` (the best cost found so far).
/// Before iterating a group, the exact two-point optimum of its first two
/// points prefilters hopeless groups; during iteration, the Eq. 10 lower
/// bound abandons groups that provably cannot beat `Cbound`, even though the
/// ε stopping rule has not fired yet.
pub fn solve_cost_bound(
    groups: &[Vec<WeightedPoint>],
    rule: StoppingRule,
) -> Option<BatchSolution> {
    solve_cost_bound_with(groups, rule, CostBoundConfig::default())
}

/// [`solve_cost_bound`] with explicit filter configuration (for ablations).
pub fn solve_cost_bound_with(
    groups: &[Vec<WeightedPoint>],
    rule: StoppingRule,
    config: CostBoundConfig,
) -> Option<BatchSolution> {
    let mut cbound = f64::INFINITY;
    let mut best: Option<(Point, usize)> = None;
    let mut stats = BatchStats::default();

    for (gi, g) in groups.iter().enumerate() {
        if g.is_empty() {
            continue;
        }
        if let GroupOutcome::Solved(sol) =
            solve_group_bounded_with(g, 0.0, rule, cbound, &mut stats, config)
        {
            if sol.cost < cbound {
                cbound = sol.cost;
                best = Some((sol.location, gi));
            }
        }
    }

    best.map(|(location, group)| BatchSolution {
        location,
        cost: cbound,
        group,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wp(x: f64, y: f64, w: f64) -> WeightedPoint {
        WeightedPoint::new(Point::new(x, y), w)
    }

    fn pseudo_groups(count: usize, size: usize, seed: u64) -> Vec<Vec<WeightedPoint>> {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as f64 / u32::MAX as f64
        };
        (0..count)
            .map(|_| {
                (0..size)
                    .map(|_| wp(next() * 100.0, next() * 100.0, next() * 10.0 + 0.1))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn empty_input() {
        let rule = StoppingRule::ErrorBound(1e-6);
        assert!(solve_sequential(&[], rule).is_none());
        assert!(solve_cost_bound(&[], rule).is_none());
        assert!(solve_cost_bound(&[vec![]], rule).is_none());
    }

    #[test]
    fn both_approaches_agree_on_best_group() {
        let groups = pseudo_groups(50, 5, 7);
        let rule = StoppingRule::ErrorBound(1e-9);
        let a = solve_sequential(&groups, rule).unwrap();
        let b = solve_cost_bound(&groups, rule).unwrap();
        assert_eq!(a.group, b.group);
        assert!(
            (a.cost - b.cost).abs() <= 1e-6 * a.cost,
            "{} vs {}",
            a.cost,
            b.cost
        );
    }

    #[test]
    fn cost_bound_does_less_work() {
        let groups = pseudo_groups(200, 5, 11);
        let rule = StoppingRule::ErrorBound(1e-9);
        let a = solve_sequential(&groups, rule).unwrap();
        let b = solve_cost_bound(&groups, rule).unwrap();
        assert!(
            b.stats.iterations < a.stats.iterations,
            "cost-bound {} vs sequential {}",
            b.stats.iterations,
            a.stats.iterations
        );
        assert!(b.stats.pruned_groups + b.stats.prefiltered_groups > 0);
    }

    #[test]
    fn exact_small_groups_are_dispatched() {
        let groups = vec![
            vec![wp(0.0, 0.0, 1.0)],
            vec![wp(0.0, 0.0, 1.0), wp(1.0, 0.0, 2.0)],
            vec![wp(0.0, 0.0, 1.0), wp(1.0, 1.0, 1.0), wp(2.0, 2.0, 1.0)], // collinear
            vec![wp(0.0, 0.0, 5.0), wp(9.0, 0.0, 1.0), wp(0.0, 9.0, 1.0)], // 3-point vertex
        ];
        let sol = solve_cost_bound(&groups, StoppingRule::ErrorBound(1e-6)).unwrap();
        assert_eq!(sol.stats.exact_groups, 4);
        // The single point gives cost 0, unbeatable.
        assert_eq!(sol.group, 0);
        assert_eq!(sol.cost, 0.0);
    }

    #[test]
    fn winner_is_truly_the_minimum() {
        let groups = pseudo_groups(30, 6, 3);
        let rule = StoppingRule::ErrorBound(1e-10);
        let b = solve_cost_bound(&groups, rule).unwrap();
        // Re-solve every group independently; none may beat the winner by
        // more than the tolerance.
        for (gi, g) in groups.iter().enumerate() {
            let s = crate::weiszfeld::solve(g, rule);
            assert!(
                b.cost <= s.cost * (1.0 + 1e-6),
                "group {gi} beats winner: {} < {}",
                s.cost,
                b.cost
            );
        }
    }

    #[test]
    fn ablation_configs_agree_on_the_answer() {
        let groups = pseudo_groups(80, 5, 19);
        let rule = StoppingRule::ErrorBound(1e-9);
        let full = solve_cost_bound(&groups, rule).unwrap();
        for (prefilter, prune) in [(false, true), (true, false), (false, false)] {
            let cfg = CostBoundConfig { prefilter, prune };
            let ablated = solve_cost_bound_with(&groups, rule, cfg).unwrap();
            assert_eq!(full.group, ablated.group, "{cfg:?}");
            assert!(
                (full.cost - ablated.cost).abs() < 1e-6 * full.cost,
                "{cfg:?}"
            );
            // Each disabled filter can only increase the work done.
            assert!(
                ablated.stats.iterations >= full.stats.iterations,
                "{cfg:?}: {} < {}",
                ablated.stats.iterations,
                full.stats.iterations
            );
        }
    }

    #[test]
    fn disabled_filters_report_zero_counts() {
        let groups = pseudo_groups(50, 5, 23);
        let rule = StoppingRule::ErrorBound(1e-6);
        let cfg = CostBoundConfig {
            prefilter: false,
            prune: false,
        };
        let sol = solve_cost_bound_with(&groups, rule, cfg).unwrap();
        assert_eq!(sol.stats.prefiltered_groups, 0);
        assert_eq!(sol.stats.pruned_groups, 0);
    }

    #[test]
    fn prefilter_counts_with_tight_bound() {
        // First group is excellent (tiny spread), the rest are terrible and
        // get prefiltered by their two-point bound.
        let mut groups = vec![vec![
            wp(50.0, 50.0, 1.0),
            wp(50.1, 50.0, 1.0),
            wp(50.0, 50.1, 1.0),
            wp(50.1, 50.1, 1.0),
        ]];
        for i in 0..10 {
            let off = 1000.0 + i as f64;
            groups.push(vec![
                wp(0.0, 0.0, 5.0),
                wp(off, off, 5.0),
                wp(off, 0.0, 1.0),
                wp(0.0, off, 1.0),
            ]);
        }
        let sol = solve_cost_bound(&groups, StoppingRule::ErrorBound(1e-6)).unwrap();
        assert_eq!(sol.group, 0);
        assert_eq!(sol.stats.prefiltered_groups, 10);
    }
}
