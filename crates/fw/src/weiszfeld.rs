//! The Weiszfeld iteration, the Vardi–Zhang modification, and the Eq. 10
//! lower bound.

use crate::exact;
use crate::types::{cost, FwSolution, StoppingRule, WeightedPoint};
use molq_geom::Point;

/// One classic Weiszfeld step (Eq. 8/9 of the paper): the next iterate is the
/// weighted average of the points with weights `wᵢ / d(q, pᵢ)`. Returns `q`
/// unchanged when it coincides with a data point (the fixed-point convention
/// of Eq. 8).
pub fn weiszfeld_step(q: Point, pts: &[WeightedPoint]) -> Point {
    let mut num = Point::ORIGIN;
    let mut den = 0.0;
    for p in pts {
        let d = q.dist(p.loc);
        if d == 0.0 {
            return q;
        }
        let g = p.weight / d;
        num = num + p.loc * g;
        den += g;
    }
    num / den
}

/// One Vardi–Zhang step: behaves like Weiszfeld away from data points, and
/// at a data point `pₖ` moves along the residual direction damped by
/// `max(0, 1 − wₖ/r)`, where `r` is the residual norm. `pₖ` is optimal
/// exactly when `wₖ ≥ r`, in which case the step stays put.
pub fn vardi_zhang_step(q: Point, pts: &[WeightedPoint]) -> Point {
    // Split into the coincident weight (if any) and the rest.
    let mut coincident_w = 0.0;
    let mut num = Point::ORIGIN;
    let mut den = 0.0;
    let mut residual = Point::ORIGIN;
    for p in pts {
        let d = q.dist(p.loc);
        if d == 0.0 {
            coincident_w += p.weight;
            continue;
        }
        let g = p.weight / d;
        num = num + p.loc * g;
        den += g;
        residual = residual + (p.loc - q) * g;
    }
    if den == 0.0 {
        // All points coincide with q.
        return q;
    }
    let t = num / den; // T̃(q): Weiszfeld over the non-coincident points
    if coincident_w == 0.0 {
        return t;
    }
    let r = residual.norm();
    if r <= coincident_w {
        return q; // q (a data point) is optimal
    }
    let step = 1.0 - coincident_w / r;
    q + (t - q) * step
}

/// The Eq. 10 lower bound on the optimal cost, evaluated at iterate `l`.
///
/// For each axis `k`, `d(q, pᵢ) ≥ αᵢₖ·|q.xₖ − pᵢ.xₖ|` with
/// `αᵢₖ = |l.xₖ − pᵢ.xₖ| / d(l, pᵢ) ≤ 1`, and since the `αᵢ` rows are unit
/// vectors the two axis bounds can be *summed* (Cauchy–Schwarz). Each axis
/// term is a 1-D weighted-median problem solved exactly by sorting.
///
/// Points coincident with `l` contribute zero (their α is undefined); the
/// bound remains valid because their true distance term is non-negative.
pub fn lower_bound(l: Point, pts: &[WeightedPoint]) -> f64 {
    let mut bound = 0.0;
    // (coordinate, alpha-weight) per axis.
    let mut axis: Vec<(f64, f64)> = Vec::with_capacity(pts.len());
    for k in 0..2 {
        axis.clear();
        for p in pts {
            let d = l.dist(p.loc);
            if d == 0.0 {
                continue;
            }
            let (pc, lc) = if k == 0 {
                (p.loc.x, l.x)
            } else {
                (p.loc.y, l.y)
            };
            let alpha = p.weight * (lc - pc).abs() / d;
            if alpha > 0.0 {
                axis.push((pc, alpha));
            }
        }
        bound += weighted_median_min(&mut axis);
    }
    bound
}

/// `min_x Σ αᵢ |x − cᵢ|`, solved at the weighted median.
fn weighted_median_min(items: &mut [(f64, f64)]) -> f64 {
    if items.is_empty() {
        return 0.0;
    }
    items.sort_by(|a, b| a.0.total_cmp(&b.0));
    let total: f64 = items.iter().map(|e| e.1).sum();
    let mut acc = 0.0;
    let mut median = items[items.len() - 1].0;
    for &(c, w) in items.iter() {
        acc += w;
        if acc >= total * 0.5 {
            median = c;
            break;
        }
    }
    items.iter().map(|&(c, w)| w * (median - c).abs()).sum()
}

/// Solves the Fermat–Weber problem, dispatching to exact cases when possible
/// and iterating otherwise (the paper's §2.3/§5.4 pipeline without the
/// global cost bound — see [`crate::batch`] for that).
pub fn solve(pts: &[WeightedPoint], rule: StoppingRule) -> FwSolution {
    assert!(!pts.is_empty(), "need at least one point");
    match pts.len() {
        1 => FwSolution {
            location: pts[0].loc,
            cost: 0.0,
            iterations: 0,
            exact: true,
        },
        2 => exact::two_point(pts[0], pts[1]),
        _ => {
            if exact::is_collinear(pts) {
                exact::collinear(pts)
            } else if pts.len() == 3 {
                exact::three_point(&[pts[0], pts[1], pts[2]])
            } else {
                solve_from(exact::centroid(pts), pts, rule)
            }
        }
    }
}

/// Iterates from an explicit starting location until the stopping rule (or
/// the cost-bound prune in [`crate::batch`]) fires.
pub fn solve_from(start: Point, pts: &[WeightedPoint], rule: StoppingRule) -> FwSolution {
    let eps = rule.epsilon();
    let max_iters = rule.max_iterations();
    let mut q = start;
    let mut iterations = 0usize;
    while iterations < max_iters {
        let next = vardi_zhang_step(q, pts);
        iterations += 1;
        let moved = next.dist(q);
        q = next;
        if let Some(eps) = eps {
            let c = cost(q, pts);
            let lb = lower_bound(q, pts);
            if lb > 0.0 && (c - lb) / lb <= eps {
                break;
            }
            // Fallback for degenerate bounds (e.g. optimum at a data point
            // where lb collapses): a vanishing step means convergence.
            if moved <= 1e-15 * (1.0 + q.norm()) {
                break;
            }
        } else if moved <= 1e-15 * (1.0 + q.norm()) {
            break;
        }
    }
    FwSolution {
        location: q,
        cost: cost(q, pts),
        iterations,
        exact: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wp(x: f64, y: f64, w: f64) -> WeightedPoint {
        WeightedPoint::new(Point::new(x, y), w)
    }

    fn pseudo_instance(n: usize, seed: u64) -> Vec<WeightedPoint> {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as f64 / u32::MAX as f64
        };
        (0..n)
            .map(|_| wp(next() * 100.0, next() * 100.0, next() * 10.0 + 0.1))
            .collect()
    }

    #[test]
    fn weiszfeld_step_moves_toward_mass() {
        let pts = [wp(0.0, 0.0, 1.0), wp(10.0, 0.0, 1.0)];
        let q = Point::new(5.0, 5.0);
        let next = weiszfeld_step(q, &pts);
        assert!(next.y < q.y); // pulled down toward the segment
    }

    #[test]
    fn weiszfeld_step_is_identity_on_data_point() {
        let pts = [wp(0.0, 0.0, 1.0), wp(10.0, 0.0, 1.0)];
        assert_eq!(
            weiszfeld_step(Point::new(0.0, 0.0), &pts),
            Point::new(0.0, 0.0)
        );
    }

    #[test]
    fn vardi_zhang_escapes_non_optimal_data_point() {
        // Optimum is clearly near the cluster at (10, 0); starting exactly on
        // the lone light point must not freeze the iteration.
        let pts = [
            wp(0.0, 0.0, 0.1),
            wp(10.0, 0.0, 5.0),
            wp(10.0, 1.0, 5.0),
            wp(10.0, -1.0, 5.0),
        ];
        let stuck = Point::new(0.0, 0.0);
        assert_eq!(weiszfeld_step(stuck, &pts), stuck, "classic step freezes");
        let next = vardi_zhang_step(stuck, &pts);
        assert!(next.x > 0.0, "VZ step must escape, got {next}");
    }

    #[test]
    fn vardi_zhang_stays_at_optimal_data_point() {
        // A dominant weight pins the optimum at the point itself.
        let pts = [wp(0.0, 0.0, 100.0), wp(10.0, 0.0, 1.0), wp(0.0, 10.0, 1.0)];
        let q = Point::new(0.0, 0.0);
        assert_eq!(vardi_zhang_step(q, &pts), q);
    }

    #[test]
    fn descent_is_monotone() {
        let pts = pseudo_instance(20, 5);
        let mut q = exact::centroid(&pts);
        let mut last = cost(q, &pts);
        for _ in 0..50 {
            q = vardi_zhang_step(q, &pts);
            let c = cost(q, &pts);
            assert!(c <= last + 1e-9 * last, "cost increased: {c} > {last}");
            last = c;
        }
    }

    #[test]
    fn lower_bound_is_valid() {
        // lb at any iterate must not exceed the (converged) optimal cost.
        for seed in [1u64, 2, 3, 4, 5] {
            let pts = pseudo_instance(8, seed);
            let opt = solve(&pts, StoppingRule::Either(1e-12, 50_000));
            let mut q = exact::centroid(&pts);
            for _ in 0..20 {
                let lb = lower_bound(q, &pts);
                assert!(
                    lb <= opt.cost * (1.0 + 1e-9),
                    "seed {seed}: lb {lb} > opt {}",
                    opt.cost
                );
                q = vardi_zhang_step(q, &pts);
            }
        }
    }

    #[test]
    fn lower_bound_tightens_near_optimum() {
        let pts = pseudo_instance(10, 9);
        let opt = solve(&pts, StoppingRule::Either(1e-12, 50_000));
        let lb = lower_bound(opt.location, &pts);
        assert!(lb > 0.9 * opt.cost, "lb {lb} vs cost {}", opt.cost);
    }

    #[test]
    fn solve_matches_grid_scan() {
        let pts = pseudo_instance(7, 42);
        let sol = solve(&pts, StoppingRule::ErrorBound(1e-9));
        let mut best = f64::INFINITY;
        for i in 0..=100 {
            for j in 0..=100 {
                let q = Point::new(i as f64, j as f64);
                best = best.min(cost(q, &pts));
            }
        }
        assert!(
            sol.cost <= best + 1e-6,
            "solver {} vs grid {}",
            sol.cost,
            best
        );
    }

    #[test]
    fn solve_dispatches_exact_cases() {
        assert!(solve(&[wp(1.0, 1.0, 2.0)], StoppingRule::ErrorBound(1e-3)).exact);
        assert!(
            solve(
                &[wp(0.0, 0.0, 1.0), wp(1.0, 0.0, 2.0)],
                StoppingRule::ErrorBound(1e-3)
            )
            .exact
        );
        let col: Vec<WeightedPoint> = (0..5).map(|i| wp(i as f64, i as f64, 1.0)).collect();
        assert!(solve(&col, StoppingRule::ErrorBound(1e-3)).exact);
    }

    #[test]
    fn error_bound_controls_accuracy() {
        let pts = pseudo_instance(9, 77);
        let rough = solve(&pts, StoppingRule::ErrorBound(0.1));
        let fine = solve(&pts, StoppingRule::ErrorBound(1e-10));
        assert!(fine.cost <= rough.cost + 1e-12);
        assert!(fine.iterations >= rough.iterations);
        // The guarantee: rough cost within 10% of optimal.
        assert!(rough.cost <= fine.cost * 1.1 + 1e-9);
    }

    #[test]
    fn max_iterations_is_respected() {
        let pts = pseudo_instance(15, 3);
        let sol = solve(&pts, StoppingRule::MaxIterations(3));
        assert!(sol.iterations <= 3);
    }
}
