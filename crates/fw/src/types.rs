//! Shared types for the Fermat–Weber solvers.

use molq_geom::Point;

/// A point with a positive weight (the paper's type weight `w^t`, possibly
/// pre-multiplied with the object weight when the caller uses multiplicative
/// weight functions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedPoint {
    /// Location.
    pub loc: Point,
    /// Weight (strictly positive).
    pub weight: f64,
}

impl WeightedPoint {
    /// Creates a weighted point.
    pub fn new(loc: Point, weight: f64) -> Self {
        assert!(
            weight > 0.0 && weight.is_finite(),
            "weight must be positive"
        );
        WeightedPoint { loc, weight }
    }

    /// An unweighted point (weight 1).
    pub fn unweighted(loc: Point) -> Self {
        WeightedPoint { loc, weight: 1.0 }
    }
}

/// The Fermat–Weber cost `Σ wᵢ · d(q, pᵢ)` (Eq. 7 of the paper).
pub fn cost(q: Point, pts: &[WeightedPoint]) -> f64 {
    pts.iter().map(|p| p.weight * q.dist(p.loc)).sum()
}

/// When to stop the iterative solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StoppingRule {
    /// Stop when the relative deviation from the optimum cost is provably at
    /// most `ε`: `(c(lⁿ) − lb(lⁿ)) / lb(lⁿ) ≤ ε`, with `lb` the Eq. 10 lower
    /// bound (the rule of §2.3).
    ErrorBound(f64),
    /// Stop after a fixed number of iterations.
    MaxIterations(usize),
    /// Stop when either condition fires.
    Either(f64, usize),
}

impl StoppingRule {
    /// The ε of the rule, if any.
    pub fn epsilon(&self) -> Option<f64> {
        match self {
            StoppingRule::ErrorBound(e) | StoppingRule::Either(e, _) => Some(*e),
            StoppingRule::MaxIterations(_) => None,
        }
    }

    /// The iteration cap of the rule (a large default guard for pure
    /// error-bound rules, so the solver always terminates).
    pub fn max_iterations(&self) -> usize {
        match self {
            StoppingRule::MaxIterations(n) | StoppingRule::Either(_, n) => *n,
            StoppingRule::ErrorBound(_) => 100_000,
        }
    }
}

/// Result of a Fermat–Weber solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FwSolution {
    /// The (approximately) optimal location.
    pub location: Point,
    /// Cost at `location`.
    pub cost: f64,
    /// Iterations spent (0 for exact closed-form cases).
    pub iterations: usize,
    /// `true` when the answer came from an exact case (1/2 points, collinear,
    /// or the three-point vertex test).
    pub exact: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_of_single_point_at_itself_is_zero() {
        let p = WeightedPoint::new(Point::new(1.0, 2.0), 3.0);
        assert_eq!(cost(p.loc, &[p]), 0.0);
    }

    #[test]
    fn cost_is_weighted_sum() {
        let pts = [
            WeightedPoint::new(Point::new(0.0, 0.0), 2.0),
            WeightedPoint::new(Point::new(3.0, 4.0), 0.5),
        ];
        let q = Point::new(0.0, 0.0);
        assert!((cost(q, &pts) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn zero_weight_rejected() {
        let _ = WeightedPoint::new(Point::ORIGIN, 0.0);
    }

    #[test]
    fn stopping_rule_accessors() {
        assert_eq!(StoppingRule::ErrorBound(1e-3).epsilon(), Some(1e-3));
        assert_eq!(StoppingRule::ErrorBound(1e-3).max_iterations(), 100_000);
        assert_eq!(StoppingRule::MaxIterations(7).epsilon(), None);
        assert_eq!(StoppingRule::Either(0.1, 9).max_iterations(), 9);
    }
}
