//! Newton refinement for Fermat–Weber solutions.
//!
//! The Weiszfeld/Vardi–Zhang iteration converges linearly; for tight error
//! bounds (ε ≤ 1e-6) dozens of extra iterations go into the last digits. The
//! cost function `f(q) = Σ wᵢ‖q − pᵢ‖` is smooth and strictly convex away
//! from the data points, with analytic gradient and Hessian:
//!
//! ```text
//! ∇f(q)  = Σ wᵢ (q − pᵢ)/dᵢ
//! ∇²f(q) = Σ wᵢ (I − uᵢuᵢᵀ)/dᵢ ,   uᵢ = (q − pᵢ)/dᵢ
//! ```
//!
//! so a damped Newton step squares the error per iteration once near the
//! optimum. [`solve_hybrid`] runs a few Vardi–Zhang steps to get into the
//! basin, then switches to Newton, falling back to Vardi–Zhang whenever a
//! step fails to decrease the cost (which also covers optima *at* data
//! points, where the Hessian blows up).

use crate::types::{cost, FwSolution, StoppingRule, WeightedPoint};
use crate::weiszfeld::{lower_bound, vardi_zhang_step};
use molq_geom::Point;

/// Gradient and Hessian of the Fermat–Weber cost at `q` (entries `hxx, hxy,
/// hyy`). Points closer than `tiny` are skipped (their subgradient is
/// handled by the Vardi–Zhang fallback).
fn grad_hessian(q: Point, pts: &[WeightedPoint]) -> (Point, f64, f64, f64) {
    let mut g = Point::ORIGIN;
    let (mut hxx, mut hxy, mut hyy) = (0.0, 0.0, 0.0);
    for p in pts {
        let d = q.dist(p.loc);
        if d < 1e-300 {
            continue;
        }
        let u = (q - p.loc) / d;
        g = g + u * p.weight;
        let s = p.weight / d;
        hxx += s * (1.0 - u.x * u.x);
        hxy += s * (-u.x * u.y);
        hyy += s * (1.0 - u.y * u.y);
    }
    (g, hxx, hxy, hyy)
}

/// One damped Newton step; `None` when the Hessian is singular.
fn newton_step(q: Point, pts: &[WeightedPoint]) -> Option<Point> {
    let (g, hxx, hxy, hyy) = grad_hessian(q, pts);
    let det = hxx * hyy - hxy * hxy;
    if det.abs() < 1e-300 {
        return None;
    }
    // Solve H s = -g.
    let sx = (-g.x * hyy + g.y * hxy) / det;
    let sy = (-g.y * hxx + g.x * hxy) / det;
    Some(Point::new(q.x + sx, q.y + sy))
}

/// Hybrid solver: Vardi–Zhang to approach the optimum, Newton to finish.
///
/// Same contract as [`crate::weiszfeld::solve_from`]; typically reaches
/// machine precision in a handful of Newton steps where the plain iteration
/// needs hundreds.
pub fn solve_hybrid(pts: &[WeightedPoint], rule: StoppingRule) -> FwSolution {
    assert!(!pts.is_empty());
    if pts.len() <= 3 || crate::exact::is_collinear(pts) {
        return crate::weiszfeld::solve(pts, rule);
    }
    let eps = rule.epsilon();
    let max_iters = rule.max_iterations();
    let mut q = crate::exact::centroid(pts);
    let mut iterations = 0usize;

    // Warm-up: a few Vardi–Zhang steps.
    for _ in 0..5.min(max_iters) {
        q = vardi_zhang_step(q, pts);
        iterations += 1;
    }
    let mut c = cost(q, pts);

    while iterations < max_iters {
        // Prefer Newton; fall back to VZ when it stalls or increases cost.
        let candidate = newton_step(q, pts)
            .filter(|&n| n.is_finite() && cost(n, pts) <= c)
            .unwrap_or_else(|| vardi_zhang_step(q, pts));
        iterations += 1;
        let moved = candidate.dist(q);
        q = candidate;
        c = cost(q, pts);
        if let Some(eps) = eps {
            let lb = lower_bound(q, pts);
            if lb > 0.0 && (c - lb) / lb <= eps {
                break;
            }
        }
        if moved <= 1e-15 * (1.0 + q.norm()) {
            break;
        }
    }
    FwSolution {
        location: q,
        cost: c,
        iterations,
        exact: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weiszfeld::solve;

    fn wp(x: f64, y: f64, w: f64) -> WeightedPoint {
        WeightedPoint::new(Point::new(x, y), w)
    }

    fn pseudo_instance(n: usize, seed: u64) -> Vec<WeightedPoint> {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as f64 / u32::MAX as f64
        };
        (0..n)
            .map(|_| wp(next() * 100.0, next() * 100.0, next() * 10.0 + 0.1))
            .collect()
    }

    #[test]
    fn hybrid_matches_plain_solver() {
        for seed in [1u64, 5, 9, 33] {
            let pts = pseudo_instance(10, seed);
            let rule = StoppingRule::Either(1e-10, 100_000);
            let plain = solve(&pts, rule);
            let hybrid = solve_hybrid(&pts, rule);
            assert!(
                (plain.cost - hybrid.cost).abs() < 1e-7 * plain.cost,
                "seed {seed}: {} vs {}",
                plain.cost,
                hybrid.cost
            );
        }
    }

    #[test]
    fn hybrid_converges_in_fewer_iterations_at_tight_eps() {
        let mut plain_total = 0usize;
        let mut hybrid_total = 0usize;
        for seed in [2u64, 4, 8, 16, 64] {
            let pts = pseudo_instance(12, seed);
            let rule = StoppingRule::Either(1e-12, 100_000);
            plain_total += solve(&pts, rule).iterations;
            hybrid_total += solve_hybrid(&pts, rule).iterations;
        }
        assert!(
            hybrid_total * 2 < plain_total,
            "hybrid {hybrid_total} vs plain {plain_total}"
        );
    }

    #[test]
    fn hybrid_handles_optimum_at_data_point() {
        // Dominant weight pins the optimum at a data point where the Hessian
        // is singular; the VZ fallback must converge there.
        let pts = [
            wp(5.0, 5.0, 100.0),
            wp(0.0, 0.0, 1.0),
            wp(10.0, 0.0, 1.0),
            wp(0.0, 10.0, 1.0),
        ];
        let sol = solve_hybrid(&pts, StoppingRule::Either(1e-9, 10_000));
        assert!(
            sol.location.dist(Point::new(5.0, 5.0)) < 1e-6,
            "{}",
            sol.location
        );
    }

    #[test]
    fn hybrid_dispatches_small_cases() {
        let pts = [wp(0.0, 0.0, 1.0), wp(4.0, 0.0, 2.0)];
        let sol = solve_hybrid(&pts, StoppingRule::ErrorBound(1e-6));
        assert!(sol.exact);
    }

    #[test]
    fn newton_step_descends_near_optimum() {
        let pts = pseudo_instance(8, 3);
        let rough = solve(&pts, StoppingRule::Either(1e-3, 10_000));
        let before = cost(rough.location, &pts);
        if let Some(next) = newton_step(rough.location, &pts) {
            assert!(cost(next, &pts) <= before + 1e-12);
        }
    }
}
