//! The unsafe syscall shim: every `unsafe` block in the crate lives here.
//!
//! Declarations are written against the Linux kernel ABI as exposed by the
//! platform libc that `std` already links — no external crate needed. Only
//! the five calls a readiness loop requires are bound: `epoll_create1`,
//! `epoll_ctl`, `epoll_wait`, `eventfd`, and fd `read`/`write`/`close`.
//! Each wrapper converts the `-1` + `errno` convention into
//! [`std::io::Result`] at the boundary, so everything above this module is
//! safe code.

use std::io;
use std::os::raw::{c_int, c_void};

/// Readable interest (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Writable interest (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, never requested).
pub const EPOLLERR: u32 = 0x008;
/// Hang-up: the peer closed its end (always reported).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down the write half of the connection (half-close).
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

/// One kernel-side readiness record: an event mask plus the caller's token.
///
/// Packed on x86-64 (and x32) to match glibc's `__EPOLL_PACKED` layout of
/// `struct epoll_event`; other architectures use natural alignment.
#[repr(C)]
#[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(packed))]
#[derive(Debug, Clone, Copy)]
pub struct EpollEvent {
    /// `EPOLL*` bit mask.
    pub events: u32,
    /// Caller-chosen token, returned verbatim with each event.
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: u32, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// `epoll_create1(EPOLL_CLOEXEC)`: a fresh epoll instance.
pub fn epoll_create() -> io::Result<i32> {
    cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })
}

/// `epoll_ctl(ADD)`: starts watching `fd` for `events`, tagged `token`.
pub fn epoll_add(epfd: i32, fd: i32, events: u32, token: u64) -> io::Result<()> {
    let mut ev = EpollEvent {
        events,
        data: token,
    };
    cvt(unsafe { epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &mut ev) }).map(drop)
}

/// `epoll_ctl(MOD)`: changes the watched event mask for `fd`.
pub fn epoll_modify(epfd: i32, fd: i32, events: u32, token: u64) -> io::Result<()> {
    let mut ev = EpollEvent {
        events,
        data: token,
    };
    cvt(unsafe { epoll_ctl(epfd, EPOLL_CTL_MOD, fd, &mut ev) }).map(drop)
}

/// `epoll_ctl(DEL)`: stops watching `fd`.
pub fn epoll_delete(epfd: i32, fd: i32) -> io::Result<()> {
    cvt(unsafe { epoll_ctl(epfd, EPOLL_CTL_DEL, fd, std::ptr::null_mut()) }).map(drop)
}

/// `epoll_wait`: blocks up to `timeout_ms` (`-1` = forever) and fills
/// `events`. Returns the number of records written.
pub fn epoll_wait_events(
    epfd: i32,
    events: &mut [EpollEvent],
    timeout_ms: i32,
) -> io::Result<usize> {
    let n = cvt(unsafe {
        epoll_wait(
            epfd,
            events.as_mut_ptr(),
            events.len().min(i32::MAX as usize) as c_int,
            timeout_ms,
        )
    })?;
    Ok(n as usize)
}

/// `eventfd(0, CLOEXEC | NONBLOCK)`: a wake-up counter fd.
pub fn eventfd_create() -> io::Result<i32> {
    cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })
}

/// Writes the 8-byte counter increment that wakes an eventfd reader.
/// An `EAGAIN` (counter already saturated) still counts as woken.
pub fn eventfd_write(fd: i32) -> io::Result<()> {
    let one: u64 = 1;
    let n = unsafe { write(fd, (&one as *const u64).cast(), 8) };
    if n == 8 {
        return Ok(());
    }
    let err = io::Error::last_os_error();
    if err.kind() == io::ErrorKind::WouldBlock {
        return Ok(()); // already pending: the reader will wake anyway
    }
    Err(err)
}

/// Drains an eventfd's counter (non-blocking read of the 8-byte value).
/// Returns `true` when a wake-up was pending.
pub fn eventfd_drain(fd: i32) -> bool {
    let mut buf = 0u64;
    let n = unsafe { read(fd, (&mut buf as *mut u64).cast(), 8) };
    n == 8
}

/// `close(fd)`, ignoring errors (used from `Drop` impls).
pub fn close_fd(fd: i32) {
    unsafe {
        close(fd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoll_event_layout_matches_the_kernel_abi() {
        // The kernel reads 12 bytes per event on packed architectures and
        // 16 elsewhere; a silent padding change would corrupt the ring.
        let expect = if cfg!(any(target_arch = "x86_64", target_arch = "x86")) {
            12
        } else {
            16
        };
        assert_eq!(std::mem::size_of::<EpollEvent>(), expect);
    }

    #[test]
    fn eventfd_roundtrip() {
        let fd = eventfd_create().unwrap();
        assert!(!eventfd_drain(fd), "fresh eventfd should be empty");
        eventfd_write(fd).unwrap();
        eventfd_write(fd).unwrap(); // coalesces into the counter
        assert!(eventfd_drain(fd));
        assert!(!eventfd_drain(fd), "drain clears the counter");
        close_fd(fd);
    }

    #[test]
    fn epoll_reports_an_armed_eventfd() {
        let ep = epoll_create().unwrap();
        let ev = eventfd_create().unwrap();
        epoll_add(ep, ev, EPOLLIN, 7).unwrap();

        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        // Nothing pending: times out immediately.
        assert_eq!(epoll_wait_events(ep, &mut events, 0).unwrap(), 0);

        eventfd_write(ev).unwrap();
        let n = epoll_wait_events(ep, &mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!({ events[0].data }, 7);
        assert_ne!({ events[0].events } & EPOLLIN, 0);

        epoll_delete(ep, ev).unwrap();
        close_fd(ev);
        close_fd(ep);
    }
}
