//! [`Poller`]: a safe, level-triggered epoll wrapper.
//!
//! Callers register raw file descriptors (anything `AsRawFd`: listeners,
//! streams, eventfds) with a `u64` token of their choosing and an
//! [`Interest`]; [`Poller::wait`] blocks until at least one registered fd
//! is ready and decodes the kernel's event mask into plain-bool
//! [`Event`]s. The poller never owns the fds it watches — closing them is
//! the caller's job (dropping a registered fd deregisters it implicitly,
//! but calling [`Poller::deregister`] first keeps the bookkeeping exact).

use crate::sys;
use std::io;
use std::time::Duration;

/// Which readiness conditions a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd has data to read (or a pending connection to
    /// accept). Peer half-close (`EPOLLRDHUP`) is always folded in, so a
    /// vanished client surfaces as a readable-then-EOF rather than a hang.
    pub readable: bool,
    /// Wake when the fd can accept more outgoing bytes.
    pub writable: bool,
}

impl Interest {
    /// Readable only — the resting state of an idle connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only — a connection flushing a response backlog.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions at once.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn mask(self) -> u32 {
        let mut m = 0;
        if self.readable {
            m |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if self.writable {
            m |= sys::EPOLLOUT;
        }
        m
    }
}

/// One decoded readiness event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Input available (or a connection to accept).
    pub readable: bool,
    /// Output space available.
    pub writable: bool,
    /// The peer hung up or the fd errored — the connection is finished
    /// regardless of what else the mask says.
    pub hangup: bool,
}

/// A level-triggered epoll instance.
#[derive(Debug)]
pub struct Poller {
    epfd: i32,
    /// Reusable kernel-event buffer for [`Poller::wait`].
    ring: Vec<sys::EpollEvent>,
}

impl Poller {
    /// A poller with room for `capacity` events per [`Poller::wait`] call.
    pub fn new(capacity: usize) -> io::Result<Poller> {
        Ok(Poller {
            epfd: sys::epoll_create()?,
            ring: vec![sys::EpollEvent { events: 0, data: 0 }; capacity.max(1)],
        })
    }

    /// Starts watching `fd` under `token` with the given interest.
    pub fn register(&self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        sys::epoll_add(self.epfd, fd, interest.mask(), token)
    }

    /// Changes the interest of an already-registered fd.
    pub fn rearm(&self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        sys::epoll_modify(self.epfd, fd, interest.mask(), token)
    }

    /// Stops watching `fd`.
    pub fn deregister(&self, fd: i32) -> io::Result<()> {
        sys::epoll_delete(self.epfd, fd)
    }

    /// Blocks until readiness (or `timeout`, `None` = forever) and appends
    /// decoded events to `out`. Returns how many events were delivered.
    /// A signal-interrupted wait (`EINTR`) is reported as zero events.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms = match timeout {
            None => -1,
            // Round up so a 0 < t < 1 ms timeout still sleeps instead of
            // spinning.
            Some(t) => t.as_millis().min(i32::MAX as u128) as i32,
        };
        let n = match sys::epoll_wait_events(self.epfd, &mut self.ring, timeout_ms) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
            Err(e) => return Err(e),
        };
        for ev in &self.ring[..n] {
            let mask = { ev.events };
            out.push(Event {
                token: { ev.data },
                readable: mask & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                writable: mask & sys::EPOLLOUT != 0,
                hangup: mask & (sys::EPOLLHUP | sys::EPOLLERR) != 0,
            });
        }
        Ok(n)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        sys::close_fd(self.epfd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn interest_masks_cover_both_directions() {
        assert_ne!(Interest::READ.mask() & sys::EPOLLIN, 0);
        assert_eq!(Interest::READ.mask() & sys::EPOLLOUT, 0);
        assert_ne!(Interest::WRITE.mask() & sys::EPOLLOUT, 0);
        assert_eq!(
            Interest::BOTH.mask(),
            Interest::READ.mask() | Interest::WRITE.mask()
        );
    }

    #[test]
    fn listener_becomes_readable_on_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let mut poller = Poller::new(8).unwrap();
        poller
            .register(listener.as_raw_fd(), 42, Interest::READ)
            .unwrap();

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert!(events.is_empty(), "no connection yet: {events:?}");

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1, "{events:?}");
        assert_eq!(events[0].token, 42);
        assert!(events[0].readable);
        poller.deregister(listener.as_raw_fd()).unwrap();
    }

    #[test]
    fn level_triggering_renotifies_until_consumed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        client.write_all(b"ping").unwrap();

        let mut poller = Poller::new(8).unwrap();
        poller
            .register(server_side.as_raw_fd(), 1, Interest::READ)
            .unwrap();
        for round in 0..2 {
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.token == 1 && e.readable),
                "round {round}: unread data must re-report under level triggering"
            );
        }
        // Dropping read interest silences the fd even though data remains.
        poller
            .rearm(server_side.as_raw_fd(), 1, Interest::WRITE)
            .unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(
            events.iter().all(|e| !e.readable),
            "readable events after disarming read interest: {events:?}"
        );
    }

    #[test]
    fn peer_close_is_visible_as_readable_or_hangup() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        let mut poller = Poller::new(8).unwrap();
        poller
            .register(server_side.as_raw_fd(), 9, Interest::READ)
            .unwrap();
        drop(client);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(
            events
                .iter()
                .any(|e| e.token == 9 && (e.readable || e.hangup)),
            "{events:?}"
        );
    }
}
