//! [`Waker`]: an `eventfd`-backed cross-thread wake-up for a blocked
//! [`crate::Poller::wait`].
//!
//! The event loop registers the waker's fd like any connection; worker
//! threads call [`Waker::wake`] after pushing onto a completion queue, and
//! the loop drains the fd when the token fires. Wakes coalesce in the
//! kernel counter, so a burst of completions costs one event, and waking
//! is safe from any thread at any time (including after the loop exited —
//! the write just accumulates in the counter).

use crate::sys;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};

/// A cross-thread wake-up handle. Cheap to share behind an `Arc`.
#[derive(Debug)]
pub struct Waker {
    fd: i32,
    /// Fast-path suppression: `wake` is a no-op while a wake is already
    /// pending, so completion bursts do one syscall, not one each.
    pending: AtomicBool,
}

impl Waker {
    /// A fresh waker (non-blocking eventfd).
    pub fn new() -> io::Result<Waker> {
        Ok(Waker {
            fd: sys::eventfd_create()?,
            pending: AtomicBool::new(false),
        })
    }

    /// The raw fd to register with a [`crate::Poller`] (readable interest).
    pub fn fd(&self) -> i32 {
        self.fd
    }

    /// Wakes the poller. Idempotent until [`Waker::drain`] runs.
    pub fn wake(&self) {
        if self.pending.swap(true, Ordering::AcqRel) {
            return; // a wake is already in flight
        }
        let _ = sys::eventfd_write(self.fd);
    }

    /// Clears the pending wake-up; the event loop calls this when the
    /// waker's token fires, *before* draining its completion queues (so a
    /// completion pushed concurrently re-wakes rather than being lost).
    pub fn drain(&self) {
        self.pending.store(false, Ordering::Release);
        sys::eventfd_drain(self.fd);
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        sys::close_fd(self.fd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poll::{Interest, Poller};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn wake_unblocks_a_waiting_poller() {
        let waker = Arc::new(Waker::new().unwrap());
        let mut poller = Poller::new(4).unwrap();
        poller.register(waker.fd(), 0, Interest::READ).unwrap();

        let remote = Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            remote.wake();
        });
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 0 && e.readable));
        waker.drain();
        t.join().unwrap();

        // Drained: the next zero-timeout wait sees nothing.
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert!(events.is_empty(), "{events:?}");
    }

    #[test]
    fn wakes_coalesce_until_drained() {
        let waker = Waker::new().unwrap();
        waker.wake();
        waker.wake();
        waker.wake();
        let mut poller = Poller::new(4).unwrap();
        poller.register(waker.fd(), 5, Interest::READ).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        waker.drain();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert!(events.is_empty());
    }
}
