//! `molq-net` — dependency-free readiness event-loop primitives.
//!
//! The MOLQ server's original transport is a thread-per-connection worker
//! pool: concurrency is capped at pool width, and a thousand mostly-idle
//! keep-alive connections would pin a thousand stacks. This crate provides
//! the substrate for an event-driven transport instead, in the std-only
//! discipline of the rest of the repository — no `mio`, no `libc` crate,
//! just a thin unsafe shim over the handful of syscalls a readiness loop
//! needs:
//!
//! * [`sys`] — raw `epoll_create1` / `epoll_ctl` / `epoll_wait` /
//!   `eventfd` declarations plus the constants they consume, every unsafe
//!   block confined to this one module;
//! * [`Poller`] — a safe epoll wrapper: register file descriptors with a
//!   caller-chosen token and an [`Interest`] (readable / writable),
//!   re-arm, deregister, and block in [`Poller::wait`] for [`Event`]s;
//! * [`Waker`] — an `eventfd`-backed cross-thread wake-up so worker
//!   threads can interrupt a blocked `wait` (completion queues, shutdown).
//!
//! The poller is **level-triggered**: an fd with unread input (or writable
//! buffer space, when writable interest is armed) reports ready on every
//! `wait` until the condition clears. Level triggering keeps connection
//! state machines simple — a handler that processes only part of the
//! readable data is re-notified instead of wedging — at the cost of
//! requiring interest to be dropped once it is no longer wanted.
//!
//! Everything here is Linux-only (`epoll` is a Linux API). On other
//! platforms the crate compiles to [`SUPPORTED`] `== false` and no
//! poller, so callers can fall back to a portable transport at runtime.

#[cfg(target_os = "linux")]
pub mod poll;
#[cfg(target_os = "linux")]
pub mod sys;
#[cfg(target_os = "linux")]
pub mod wake;

#[cfg(target_os = "linux")]
pub use poll::{Event, Interest, Poller};
#[cfg(target_os = "linux")]
pub use wake::Waker;

/// `true` when this build has a working readiness poller (Linux).
pub const SUPPORTED: bool = cfg!(target_os = "linux");
