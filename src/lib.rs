//! # molq — Multi-Criteria Optimal Location Queries
//!
//! A from-scratch Rust reproduction of *"Multi-Criteria Optimal Location
//! Query with Overlapping Voronoi Diagrams"* (Zhang, Ku, Qin, Sun, Lu —
//! EDBT 2014).
//!
//! Given several sets of typed points of interest (schools, bus stops,
//! supermarkets, …), each with a type weight and per-object weights, a MOLQ
//! finds the location minimising the summed weighted distance to one nearest
//! object of every type — the "best place to build a new home" query of the
//! paper's introduction.
//!
//! The facade re-exports the workspace crates:
//!
//! * [`geom`] — geometry substrate (robust predicates, polygon clipping,
//!   MBRs),
//! * [`index`] — spatial indexes (grid, kd-tree, R-tree),
//! * [`voronoi`] — Delaunay triangulation, ordinary and weighted Voronoi
//!   diagrams,
//! * [`fw`] — Fermat–Weber solvers (exact cases, Weiszfeld/Vardi–Zhang,
//!   cost-bound batches),
//! * [`core`] — the OVD/MOVD model, the ⊕ plane-sweep overlap, and the SSC /
//!   RRB / MBRB solutions,
//! * [`datagen`] — synthetic GeoNames-like workloads and CSV I/O.
//!
//! # Example
//!
//! ```
//! use molq::prelude::*;
//! use molq::geom::{Mbr, Point};
//!
//! let bounds = Mbr::new(0.0, 0.0, 10.0, 10.0);
//! let schools = ObjectSet::uniform("schools", 2.0,
//!     vec![Point::new(2.0, 2.0), Point::new(8.0, 3.0)]);
//! let markets = ObjectSet::uniform("markets", 1.0,
//!     vec![Point::new(3.0, 8.0), Point::new(7.0, 7.0)]);
//!
//! let query = MolqQuery::new(vec![schools, markets], bounds);
//! let answer = solve_rrb(&query).expect("valid query");
//! println!("build at {} (total weighted distance {:.2})",
//!          answer.location, answer.cost);
//! ```

pub use molq_core as core;
pub use molq_datagen as datagen;
pub use molq_fw as fw;
pub use molq_geom as geom;
pub use molq_index as index;
pub use molq_viz as viz;
pub use molq_voronoi as voronoi;

/// One-stop imports for query building and solving.
pub mod prelude {
    pub use molq_core::prelude::*;
    pub use molq_datagen::{standard_query, GeoLayer};
    pub use molq_fw::StoppingRule;
}
